"""Cluster lifecycle: spawn workers, wire the gateway, drain, shut down.

:func:`start_cluster` is the one-call entry point::

    from repro.cluster import start_cluster

    with start_cluster(n_workers=2, store_dir="cluster-store") as cluster:
        report = cluster.solve(instance, "optop")
        stats = cluster.stats()          # aggregated, exact partition

It spawns ``n_workers`` worker *processes* (``python -m
repro.cluster.worker``) on ephemeral localhost ports — each announces
``REPRO_WORKER_READY port=...`` on stdout, which the launcher parses, so
there is no port-race window — all sharing one artifact-store directory,
then builds a :class:`~repro.cluster.gateway.ClusterGateway` over them
inside a dedicated event-loop thread.  The returned
:class:`ClusterHandle` is the synchronous facade: ``submit`` /``solve``/
``solve_many``/``stats``/``drain``/``shutdown`` all bridge into the
gateway loop via ``run_coroutine_threadsafe``.

Fault injection for tests rides along: :meth:`ClusterHandle.kill_worker`
SIGKILLs one shard mid-stream; the gateway re-routes its keys to the
survivors on the next connection failure.  With ``supervise=True`` a
:class:`WorkerSupervisor` thread additionally respawns dead worker
processes in place (same port, warm via the shared store) under a bounded
restart budget with exponential backoff, and ``fault_plan=`` arms every
worker's deterministic fault injector (:mod:`repro.faults`) for chaos
runs.
"""

from __future__ import annotations

import asyncio
import logging
import os
import re
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.api.config import SolveConfig
from repro.api.report import SolveReport
from repro.cluster.gateway import ClusterGateway
from repro.exceptions import ClusterError
from repro.faults.spec import PROCESS_FATAL_KINDS, FaultPlan
from repro.obs import Observability
from repro.obs.collect import merged_snapshot, render_merged
from repro.serve.service import ServiceStats

__all__ = ["ClusterHandle", "EventLoopThread", "WorkerProcess",
           "WorkerSupervisor", "start_cluster"]

logger = logging.getLogger("repro.cluster.launcher")

_READY_LINE = re.compile(r"REPRO_WORKER_READY port=(\d+) pid=(\d+)")


class EventLoopThread:
    """An asyncio loop running in a daemon thread, driven synchronously."""

    def __init__(self, name: str = "repro-cluster-loop") -> None:
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, name=name,
                                        daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.call_soon(self._ready.set)
        self.loop.run_forever()

    def start(self) -> "EventLoopThread":
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise ClusterError("gateway event loop failed to start")
        return self

    def submit(self, coro) -> Future:
        """Schedule a coroutine; returns its ``concurrent.futures.Future``."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def run(self, coro, timeout: Optional[float] = None):
        """Run a coroutine to completion and return its result."""
        return self.submit(coro).result(timeout=timeout)

    def stop(self) -> None:
        if self._thread.is_alive():
            self.loop.call_soon_threadsafe(self.loop.stop)
            self._thread.join(timeout=10.0)
        if not self.loop.is_closed():
            self.loop.close()


class WorkerProcess:
    """One spawned shard: the subprocess and its announced endpoint.

    The constructor arguments are kept, so :meth:`respawn` can relaunch a
    dead shard *on the same port* (its routing identity) — with the
    process-fatal fault kinds stripped from the plan, so a scripted
    SIGKILL cannot re-fire in every replacement and burn the supervisor's
    restart budget.
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 store_dir: Optional[str] = None, max_batch: int = 64,
                 max_wait_ms: float = 2.0, max_queue: int = 10_000,
                 pool_workers: int = 0,
                 startup_timeout: float = 120.0,
                 fault_plan: Optional[FaultPlan] = None,
                 obs: bool = False) -> None:
        self.host = host
        self.store_dir = store_dir
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.max_queue = max_queue
        self.pool_workers = pool_workers
        self.startup_timeout = startup_timeout
        self.fault_plan = fault_plan
        self.obs = bool(obs)
        #: Times this shard was relaunched after dying.
        self.respawns = 0
        self.process = self._spawn(port=port, fault_plan=fault_plan)
        self.port = self._await_ready(startup_timeout)

    def _spawn(self, *, port: int,
               fault_plan: Optional[FaultPlan]) -> subprocess.Popen:
        command = [sys.executable, "-m", "repro.cluster.worker_main",
                   "--host", self.host, "--port", str(port),
                   "--max-batch", str(self.max_batch),
                   "--max-wait-ms", str(self.max_wait_ms),
                   "--max-queue", str(self.max_queue),
                   "--workers", str(self.pool_workers)]
        if self.store_dir is not None:
            command += ["--store", str(self.store_dir)]
        if fault_plan is not None and fault_plan.specs:
            command += ["--fault-plan", fault_plan.to_json()]
        if self.obs:
            command += ["--obs"]
        env = dict(os.environ)
        # The worker must import repro regardless of how the parent found
        # it (installed, or straight off src/ via PYTHONPATH).
        src_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        return subprocess.Popen(
            command, stdout=subprocess.PIPE, text=True, env=env)

    def respawn(self) -> None:
        """Relaunch a dead shard on its original port (same node id).

        The shared artifact store makes the replacement warm: any key the
        dead incarnation persisted is served from disk.  Raises
        :class:`~repro.exceptions.ClusterError` when the replacement fails
        to announce readiness (the caller owns the retry budget).
        """
        if self.alive:
            return
        plan = None if self.fault_plan is None \
            else self.fault_plan.without(PROCESS_FATAL_KINDS)
        self.process = self._spawn(port=self.port, fault_plan=plan)
        announced = self._await_ready(self.startup_timeout)
        if announced != self.port:
            self.process.kill()
            raise ClusterError(
                f"respawned worker announced port {announced}, expected "
                f"{self.port} (routing identity must not change)")
        self.respawns += 1

    def _await_ready(self, timeout: float) -> int:
        """Parse the READY line off stdout (in a thread, with a deadline)."""
        result: Dict[str, int] = {}
        ready = threading.Event()

        def pump() -> None:
            stream = self.process.stdout
            for line in iter(stream.readline, ""):
                match = _READY_LINE.search(line)
                if match and not ready.is_set():
                    result["port"] = int(match.group(1))
                    ready.set()
                # keep draining so the worker never blocks on a full pipe
            ready.set()

        threading.Thread(target=pump, daemon=True,
                         name="repro-worker-stdout").start()
        if not ready.wait(timeout=timeout) or "port" not in result:
            self.process.kill()
            raise ClusterError(
                f"worker failed to announce readiness within {timeout}s "
                f"(exit code {self.process.poll()})")
        return result["port"]

    @property
    def endpoint(self) -> Tuple[str, int]:
        return self.host, self.port

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL the shard (fault injection; no drain, no goodbye)."""
        self.process.kill()
        self.process.wait(timeout=10.0)

    def terminate(self, timeout: float = 10.0) -> None:
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait(timeout=timeout)


class WorkerSupervisor(threading.Thread):
    """Monitor worker processes; respawn the dead under a bounded budget.

    Sweeps every ``check_interval`` seconds.  A dead worker (its process
    exited — SIGKILLed, OOM-killed, crashed) is relaunched on the same
    port via :meth:`WorkerProcess.respawn` after an exponential backoff
    (``backoff_base * 2**respawns_so_far``), at most ``max_respawns``
    times per worker; then the gateway is told via
    :meth:`~repro.cluster.gateway.ClusterGateway.note_worker_respawn` so
    the dead incarnation's stats are archived and its breaker closes.
    A worker past its budget stays dead (and its keys stay failed over).
    """

    def __init__(self, *, workers: List[WorkerProcess],
                 gateway: ClusterGateway, loop: EventLoopThread,
                 max_respawns: int = 3, check_interval: float = 0.1,
                 backoff_base: float = 0.05) -> None:
        super().__init__(name="repro-cluster-supervisor", daemon=True)
        self.workers = workers
        self.gateway = gateway
        self.loop = loop
        self.max_respawns = int(max_respawns)
        self.check_interval = float(check_interval)
        self.backoff_base = float(backoff_base)
        self.respawn_failures = 0
        # Not "_stop": threading.Thread uses that name internally.
        self._halt = threading.Event()

    def stop(self, timeout: float = 10.0) -> None:
        self._halt.set()
        if self.is_alive():
            self.join(timeout=timeout)

    @property
    def total_respawns(self) -> int:
        return sum(worker.respawns for worker in self.workers)

    def run(self) -> None:
        while not self._halt.wait(self.check_interval):
            for worker in self.workers:
                if worker.alive or worker.respawns >= self.max_respawns:
                    continue
                delay = self.backoff_base * (2.0 ** worker.respawns)
                if self._halt.wait(delay):
                    return
                node_id = f"{worker.host}:{worker.port}"
                try:
                    worker.respawn()
                except Exception as exc:  # noqa: BLE001 - keep supervising
                    self.respawn_failures += 1
                    logger.warning("respawn of worker %s failed: %r",
                                   node_id, exc)
                    continue
                logger.warning(
                    "worker %s died; respawned (pid %d, respawn %d/%d)",
                    node_id, worker.process.pid, worker.respawns,
                    self.max_respawns)
                self.loop.loop.call_soon_threadsafe(
                    self.gateway.note_worker_respawn, node_id)

    def stats(self) -> Dict[str, object]:
        return {
            "enabled": True,
            "max_respawns": self.max_respawns,
            "worker_respawns": self.total_respawns,
            "respawn_failures": self.respawn_failures,
        }


class ClusterHandle:
    """Synchronous facade over a running cluster (gateway + workers)."""

    def __init__(self, *, workers: List[WorkerProcess],
                 gateway: ClusterGateway, loop: EventLoopThread,
                 store_dir: str,
                 owned_tmp: Optional[tempfile.TemporaryDirectory] = None,
                 http_port: Optional[int] = None,
                 supervisor: Optional[WorkerSupervisor] = None) -> None:
        self.workers = workers
        self.gateway = gateway
        self.loop = loop
        self.store_dir = store_dir
        self.http_port = http_port
        self.supervisor = supervisor
        self._owned_tmp = owned_tmp
        self._closed = False

    # ------------------------------------------------------------------ #
    # Solve path
    # ------------------------------------------------------------------ #
    def submit(self, instance, strategy: Optional[str] = None, *,
               config: Optional[SolveConfig] = None,
               deadline: Optional[float] = None,
               ) -> "Future[SolveReport]":
        """Submit one solve; returns a ``concurrent.futures.Future``.

        ``deadline`` (absolute :func:`time.monotonic`) rides the whole
        pipeline — gateway retry budget, wire header, shard dispatcher —
        and expires as :class:`~repro.exceptions.ServiceTimeoutError`.
        """
        return self.loop.submit(
            self.gateway.submit(instance, strategy, config=config,
                                deadline=deadline))

    def solve(self, instance, strategy: Optional[str] = None, *,
              config: Optional[SolveConfig] = None,
              deadline: Optional[float] = None,
              timeout: Optional[float] = 300.0) -> SolveReport:
        """Blocking one-shot solve through the cluster."""
        return self.submit(instance, strategy, config=config,
                           deadline=deadline).result(timeout=timeout)

    def solve_many(self, instances: Sequence[object],
                   strategy: Optional[str] = None, *,
                   config: Optional[SolveConfig] = None,
                   timeout: Optional[float] = 300.0) -> List[SolveReport]:
        """Submit a burst and gather the reports in submission order."""
        futures = [self.submit(instance, strategy, config=config)
                   for instance in instances]
        return [future.result(timeout=timeout) for future in futures]

    # ------------------------------------------------------------------ #
    # Observability & lifecycle
    # ------------------------------------------------------------------ #
    def stats(self, *, refresh: bool = True) -> Dict[str, object]:
        """Aggregated cluster stats (see :meth:`ClusterGateway.stats`),
        plus a ``supervisor`` section when supervision is enabled."""
        stats = self.loop.run(self.gateway.stats(refresh=refresh),
                              timeout=60.0)
        stats["supervisor"] = {"enabled": False} if self.supervisor is None \
            else self.supervisor.stats()
        return stats

    def merged_stats(self, *, refresh: bool = True) -> ServiceStats:
        """The cross-shard :class:`~repro.serve.ServiceStats` aggregate."""
        return ServiceStats.from_dict(
            dict(self.stats(refresh=refresh)["merged"]))

    def metrics(self, *, fmt: str = "text",
                refresh: bool = True) -> Union[str, Dict[str, object]]:
        """The gateway's ``/metrics`` surface without the HTTP hop:
        the Prometheus exposition (``fmt="text"``) or the JSON snapshot
        (``fmt="json"``) of the aggregated cluster counters, merged with
        the gateway's live latency histograms when observability is on.
        """
        registries = self.loop.run(
            self.gateway.metrics_registries(refresh=refresh), timeout=60.0)
        if fmt == "json":
            return merged_snapshot(*registries)
        if fmt != "text":
            raise ClusterError(f"unknown metrics format {fmt!r}")
        return render_merged(*registries)

    def trace(self, *, last: Optional[int] = None,
              aggregate: bool = True) -> Dict[str, object]:
        """The aggregated Chrome ``trace_event`` view (gateway spans plus
        every alive worker's ring); empty when observability is off."""
        return self.loop.run(
            self.gateway.trace(last=last, aggregate=aggregate),
            timeout=60.0)

    def health(self) -> Dict[str, object]:
        return self.loop.run(self.gateway.health(), timeout=60.0)

    def drain(self, *, timeout: float = 60.0) -> bool:
        """Block until every shard has resolved its accepted requests."""
        return self.loop.run(self.gateway.drain(timeout=timeout),
                             timeout=timeout + 30.0)

    def kill_worker(self, index: int) -> str:
        """SIGKILL shard ``index``; returns its node id (fault injection)."""
        worker = self.workers[index]
        node_id = f"{worker.host}:{worker.port}"
        worker.kill()
        return node_id

    def shutdown(self, *, drain: bool = True, timeout: float = 60.0) -> None:
        """Drain (optionally), stop every worker, stop the gateway loop."""
        if self._closed:
            return
        self._closed = True
        if self.supervisor is not None:
            # Stop supervising before killing workers, or the monitor
            # would dutifully resurrect everything we terminate.
            self.supervisor.stop()
        try:
            if drain and any(worker.alive for worker in self.workers):
                try:
                    self.loop.run(self.gateway.drain(timeout=timeout),
                                  timeout=timeout + 30.0)
                except Exception:  # noqa: BLE001 - shutdown must proceed
                    pass
            try:
                self.loop.run(self.gateway.shutdown_workers(), timeout=30.0)
            except Exception:  # noqa: BLE001 - fall back to SIGTERM below
                pass
            try:
                self.loop.run(self.gateway.stop_http(), timeout=10.0)
            except Exception:  # noqa: BLE001
                pass
            self.gateway.close()
        finally:
            for worker in self.workers:
                worker.terminate()
            self.loop.stop()
            if self._owned_tmp is not None:
                self._owned_tmp.cleanup()

    def __enter__(self) -> "ClusterHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(drain=exc_type is None)


def start_cluster(n_workers: int = 2, *, store_dir: Optional[str] = None,
                  host: str = "127.0.0.1", max_inflight: int = 8,
                  max_retries: int = 6, max_batch: int = 64,
                  max_wait_ms: float = 2.0, max_queue: int = 10_000,
                  pool_workers: int = 0, http: bool = False,
                  http_port: int = 0,
                  startup_timeout: float = 120.0,
                  supervise: bool = False, max_respawns: int = 3,
                  fault_plan: Optional[Union[FaultPlan, str]] = None,
                  obs: bool = False,
                  ) -> ClusterHandle:
    """Spawn ``n_workers`` shard processes and a gateway over them.

    All shards share one artifact-store directory (a private temporary one
    when ``store_dir`` is omitted, cleaned up on shutdown), so any key the
    cluster has ever solved is served from disk by whichever shard owns it
    now.  With ``http=True`` the gateway additionally listens on
    ``http_port`` (0 = ephemeral; see ``handle.http_port``).

    ``supervise=True`` starts a :class:`WorkerSupervisor` that respawns
    dead worker processes in place (same port, warm via the shared store)
    up to ``max_respawns`` times each; the default leaves dead workers
    dead, which is what fault-tolerance *tests* usually want.
    ``fault_plan`` (a :class:`~repro.faults.FaultPlan`, a built-in plan
    name, or a plan-JSON file path) arms every worker's fault injector —
    chaos runs only.

    ``obs=True`` arms observability end to end: the gateway mints
    deterministic trace ids and records ``gateway.request`` spans, every
    worker is spawned with ``--obs`` (so it records ``worker.solve`` /
    ``service.batch`` / kernel spans under the propagated id), and
    :meth:`ClusterHandle.metrics` / :meth:`ClusterHandle.trace` expose
    the cross-process view.  Off by default: the disabled cost is one
    ``is None`` check per request at each hop.
    """
    if int(n_workers) < 1:
        raise ClusterError(f"n_workers must be >= 1, got {n_workers!r}")
    if isinstance(fault_plan, str):
        fault_plan = FaultPlan.load(fault_plan)
    owned_tmp = None
    if store_dir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="repro-cluster-")
        store_dir = owned_tmp.name
    workers: List[WorkerProcess] = []
    loop: Optional[EventLoopThread] = None
    supervisor: Optional[WorkerSupervisor] = None
    try:
        for _ in range(int(n_workers)):
            workers.append(WorkerProcess(
                host=host, store_dir=store_dir, max_batch=max_batch,
                max_wait_ms=max_wait_ms, max_queue=max_queue,
                pool_workers=pool_workers,
                startup_timeout=startup_timeout,
                fault_plan=fault_plan, obs=obs))
        loop = EventLoopThread().start()
        gateway = ClusterGateway(
            [worker.endpoint for worker in workers],
            max_inflight=max_inflight, max_retries=max_retries,
            obs=Observability(service="gateway") if obs else None)
        deadline = time.monotonic() + startup_timeout
        while True:
            health = loop.run(gateway.health(), timeout=30.0)
            if health["status"] == "ok" and all(
                    entry["health"] is not None
                    for entry in health["workers"].values()):
                break
            if time.monotonic() > deadline:
                raise ClusterError("cluster failed its startup health check")
            time.sleep(0.05)
        bound_port = None
        if http:
            bound_port = loop.run(
                gateway.start_http(host=host, port=http_port), timeout=30.0)
        if supervise:
            supervisor = WorkerSupervisor(
                workers=workers, gateway=gateway, loop=loop,
                max_respawns=max_respawns)
            supervisor.start()
        return ClusterHandle(workers=workers, gateway=gateway, loop=loop,
                             store_dir=store_dir, owned_tmp=owned_tmp,
                             http_port=bound_port, supervisor=supervisor)
    except BaseException:
        if supervisor is not None:
            supervisor.stop()
        for worker in workers:
            worker.terminate()
        if loop is not None:
            loop.stop()
        if owned_tmp is not None:
            owned_tmp.cleanup()
        raise
