"""Wire protocol of the cluster fabric: minimal HTTP/1.1 + JSON bodies.

Everything the cluster ships — solve requests, solve reports, stats
snapshots, health probes — is the JSON the library already round-trips
(:func:`repro.serialization.instance_to_dict`,
:meth:`repro.api.report.SolveReport.to_json`,
:meth:`repro.serve.ServiceStats.to_dict`), framed in just enough
HTTP/1.1 to be curl-able and keep-alive friendly.  The implementation is
pure stdlib ``asyncio`` streams: no third-party HTTP server or client is
required (or allowed — the container only carries the scientific stack).

The pieces:

* request/response framing — :func:`read_request`, :func:`read_response`,
  :func:`write_request`, :func:`write_response`; ``Content-Length`` bodies
  only, persistent connections by default, ``Connection: close`` honoured;
* the solve wire format — :func:`encode_solve_request` /
  :func:`decode_solve_request` carry ``{instance, strategy, config,
  digest}``.  The digest rides both in the body and in the
  ``X-Repro-Digest`` header so the gateway can shard *without parsing the
  instance JSON* (header-only routing keeps the gateway thin);
* error transport — :func:`error_response` maps the service exception
  hierarchy onto status codes (backpressure -> 503 with the queue depth,
  expired deadlines -> 504, model errors -> 400, everything else -> 500)
  and
  :func:`raise_for_response` re-raises the matching exception on the
  caller's side, so ``ServiceOverloadedError`` (and its ``queue_depth``)
  survives the hop and the gateway's retry/backoff logic keys off real
  exception types, not string matching.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.api.config import SolveConfig
from repro.api.report import SolveReport
from repro.exceptions import (
    ClusterError,
    ModelError,
    ReproError,
    ServiceClosedError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from repro.serialization import (
    instance_digest,
    instance_from_dict,
    instance_to_dict,
)

__all__ = [
    "DIGEST_HEADER",
    "DEADLINE_HEADER",
    "TRACE_HEADER",
    "read_request",
    "read_response",
    "write_request",
    "write_response",
    "encode_solve_request",
    "decode_solve_request",
    "encode_report",
    "decode_report",
    "error_response",
    "raise_for_response",
]

#: Routing-key header: lets the gateway shard on the instance digest
#: without deserialising the request body.
DIGEST_HEADER = "x-repro-digest"

#: End-to-end deadline header: the *remaining* budget in milliseconds.
#: Deadlines are ``time.monotonic()`` instants locally, but monotonic
#: clocks do not transfer across processes — so the wire carries how much
#: time is left, and the receiver rebuilds a local absolute deadline.
DEADLINE_HEADER = "x-repro-deadline-ms"

#: Distributed-tracing header: the deterministic trace id minted by the
#: gateway (:func:`repro.obs.tracing.trace_id_for`) rides every hop so
#: gateway, worker and batch spans of one request share an id.
TRACE_HEADER = "x-repro-trace-id"

#: Upper bounds keeping a malformed peer from ballooning memory.
_MAX_LINE = 16 * 1024
_MAX_BODY = 64 * 1024 * 1024

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout"}


class _WireError(ClusterError):
    """Malformed HTTP framing from a peer (connection is dropped)."""


async def _read_head(reader: asyncio.StreamReader,
                     ) -> Optional[Tuple[str, Dict[str, str]]]:
    """Read one start line + headers; ``None`` on a clean EOF."""
    try:
        start = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # peer closed between messages: normal keep-alive end
        raise _WireError("truncated HTTP start line") from exc
    except asyncio.LimitOverrunError as exc:
        raise _WireError("HTTP start line too long") from exc
    if len(start) > _MAX_LINE:
        raise _WireError("HTTP start line too long")
    headers: Dict[str, str] = {}
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except asyncio.LimitOverrunError as exc:
            raise _WireError("HTTP header line too long") from exc
        if len(line) > _MAX_LINE:
            raise _WireError("HTTP header line too long")
        if line == b"\r\n":
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return start.decode("latin-1").rstrip("\r\n"), headers


async def _read_body(reader: asyncio.StreamReader,
                     headers: Dict[str, str]) -> bytes:
    length = int(headers.get("content-length", "0"))
    if length < 0 or length > _MAX_BODY:
        raise _WireError(f"unacceptable content-length {length}")
    return await reader.readexactly(length) if length else b""


async def read_request(reader: asyncio.StreamReader,
                       ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Read one request; ``(method, path, headers, body)`` or ``None`` (EOF)."""
    head = await _read_head(reader)
    if head is None:
        return None
    start, headers = head
    parts = start.split()
    if len(parts) != 3:
        raise _WireError(f"malformed request line {start!r}")
    method, path, _version = parts
    body = await _read_body(reader, headers)
    return method.upper(), path, headers, body


async def read_response(reader: asyncio.StreamReader,
                        ) -> Tuple[int, Dict[str, str], bytes]:
    """Read one response; raises on EOF (a response must not be truncated)."""
    head = await _read_head(reader)
    if head is None:
        raise _WireError("connection closed before the response arrived")
    start, headers = head
    parts = start.split(None, 2)
    if len(parts) < 2 or not parts[1].isdigit():
        raise _WireError(f"malformed status line {start!r}")
    body = await _read_body(reader, headers)
    return int(parts[1]), headers, body


async def write_request(writer: asyncio.StreamWriter, method: str, path: str,
                        body: bytes = b"", *,
                        headers: Optional[Dict[str, str]] = None) -> None:
    """Frame and send one request (keep-alive) and drain the transport."""
    lines = [f"{method} {path} HTTP/1.1",
             "host: cluster",
             f"content-length: {len(body)}"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
    await writer.drain()


async def write_response(writer: asyncio.StreamWriter, status: int,
                         body: bytes, *, close: bool = False,
                         content_type: str = "application/json") -> None:
    """Frame and send one response and drain the transport.

    JSON by default; the ``/metrics`` endpoints pass the Prometheus text
    exposition content type instead.
    """
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"content-type: {content_type}\r\n"
            f"content-length: {len(body)}\r\n"
            + ("connection: close\r\n" if close else "")
            + "\r\n")
    writer.write(head.encode("latin-1") + body)
    await writer.drain()


# ---------------------------------------------------------------------- #
# Solve wire format
# ---------------------------------------------------------------------- #
def encode_solve_request(instance: object, strategy: str,
                         config: Optional[SolveConfig], *,
                         digest: Optional[str] = None,
                         ) -> Tuple[bytes, str]:
    """Serialise one solve request; returns ``(body, digest)``.

    The digest is computed here (once, client side) so every later hop —
    gateway routing, worker cache keys — reuses it instead of re-canonising
    the instance JSON.
    """
    config = SolveConfig() if config is None else config
    if digest is None:
        digest = instance_digest(instance)
    body = json.dumps({
        "instance": instance_to_dict(instance),
        "strategy": strategy,
        "config": config.to_dict(),
        "digest": digest,
    }, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return body, digest


def decode_solve_request(body: bytes,
                         ) -> Tuple[object, str, SolveConfig, Optional[str]]:
    """Parse a solve request into ``(instance, strategy, config, digest)``."""
    try:
        payload = json.loads(body.decode("utf-8"))
        instance = instance_from_dict(payload["instance"])
        strategy = payload["strategy"]
        config = SolveConfig.from_dict(payload.get("config") or {})
    except ReproError:
        raise
    except Exception as exc:  # noqa: BLE001 - malformed peer input
        raise ModelError(f"malformed solve request: {exc}") from exc
    return instance, strategy, config, payload.get("digest")


def encode_report(report: SolveReport) -> bytes:
    return report.to_json().encode("utf-8")


def decode_report(body: bytes) -> SolveReport:
    return SolveReport.from_json(body.decode("utf-8"))


# ---------------------------------------------------------------------- #
# Error transport
# ---------------------------------------------------------------------- #
def error_response(exc: BaseException) -> Tuple[int, bytes]:
    """Map an exception onto ``(status, body)`` for the wire.

    503 carries retryable service conditions (backpressure with its queue
    depth, a draining/closed service); 504 carries an expired end-to-end
    deadline (final — the gateway must not retry it); 400 carries caller
    mistakes (bad instance JSON, unknown strategies); 500 is everything
    unexpected.
    """
    payload: Dict[str, Any] = {
        "error": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, ServiceOverloadedError):
        status = 503
        payload["queue_depth"] = exc.queue_depth
    elif isinstance(exc, ServiceClosedError):
        status = 503
    elif isinstance(exc, ServiceTimeoutError):
        status = 504
        if exc.elapsed is not None:
            payload["elapsed"] = exc.elapsed
    elif isinstance(exc, ReproError):
        status = 400
    else:
        status = 500
    return status, json.dumps(payload, sort_keys=True).encode("utf-8")


def raise_for_response(status: int, body: bytes) -> None:
    """Re-raise the remote error a non-200 response carries.

    Reconstructs the exception *type* where the caller's control flow
    depends on it: ``ServiceOverloadedError`` (with ``queue_depth``) drives
    the gateway's backoff, ``ServiceClosedError`` marks a draining worker.
    Everything else surfaces as :class:`~repro.exceptions.ClusterError`
    naming the remote type.
    """
    if status == 200:
        return
    try:
        payload = json.loads(body.decode("utf-8"))
    except Exception:  # noqa: BLE001 - non-JSON error body
        payload = {"error": "ClusterError", "message": body[:200].decode(
            "utf-8", "replace")}
    kind = payload.get("error", "ClusterError")
    message = payload.get("message", f"remote error (HTTP {status})")
    if kind == "ServiceOverloadedError":
        raise ServiceOverloadedError(
            message, queue_depth=payload.get("queue_depth"))
    if kind == "ServiceClosedError":
        raise ServiceClosedError(message)
    if kind == "ServiceTimeoutError" or status == 504:
        raise ServiceTimeoutError(message, elapsed=payload.get("elapsed"))
    raise ClusterError(f"{kind}: {message} (HTTP {status})")
