"""Rendezvous (highest-random-weight) sharding on instance digests.

The gateway must send every request for one instance digest to the same
shard — that is what preserves the worker-local coalescing and tier-1 hit
rates the single-process service already earns — and the mapping must be:

* **deterministic across processes** (a restarted gateway, or a second
  gateway in front of the same workers, routes identically), which rules
  out Python's salted ``hash()``;
* **minimally disruptive** under membership change: when a worker dies,
  only the keys it owned may move.  Plain ``int(digest, 16) % N`` fails
  this — dropping from 4 to 3 shards remaps ~75% of all keys, flushing
  every surviving shard's hot tier.  Rendezvous hashing remaps exactly the
  dead shard's keys and nothing else.

Weights are SHA-256 over ``"{node}|{digest}"``, so any string-identified
node set works and ties are effectively impossible.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence

from repro.exceptions import ClusterError

__all__ = ["rendezvous_weight", "rank_nodes", "route", "shard_map"]


def rendezvous_weight(node_id: str, digest: str) -> int:
    """The (deterministic) weight of ``node_id`` for key ``digest``."""
    payload = f"{node_id}|{digest}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:16], "big")


def rank_nodes(digest: str, node_ids: Sequence[str]) -> List[str]:
    """All nodes ordered by preference for ``digest`` (highest weight first).

    The head of the list is the owning shard; the tail is the failover
    order, so retry loops can walk it without re-hashing.
    """
    return sorted(node_ids, reverse=True,
                  key=lambda node: (rendezvous_weight(node, digest), node))


def route(digest: str, node_ids: Sequence[str]) -> str:
    """The owning shard of ``digest`` among ``node_ids``."""
    if not node_ids:
        raise ClusterError("cannot route: no nodes")
    return rank_nodes(digest, node_ids)[0]


def shard_map(digests: Sequence[str], node_ids: Sequence[str],
              ) -> Dict[str, List[str]]:
    """Group ``digests`` by owning node (diagnostics / balance checks)."""
    grouped: Dict[str, List[str]] = {node: [] for node in node_ids}
    for digest in digests:
        grouped[route(digest, node_ids)].append(digest)
    return grouped
