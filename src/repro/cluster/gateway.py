"""`ClusterGateway`: digest-sharded routing over N worker endpoints.

The gateway is the cluster's single front door.  For every solve request
it:

1. **routes by instance digest** — rendezvous hashing
   (:mod:`repro.cluster.hashing`) over the *alive* workers, so one
   instance always lands on one shard.  That affinity is what lets each
   shard's coalescer and tier-1 LRU behave exactly as they do in the
   single-process service: a hot key is hot on one shard, not diluted
   over N;
2. **bounds per-worker in-flight** — an ``asyncio.Semaphore`` per endpoint
   caps how many requests the gateway holds open against one shard, so a
   slow worker backs traffic up at the gateway instead of ballooning its
   own queue;
3. **retries overload with backoff** — a worker's 503
   (:class:`~repro.exceptions.ServiceOverloadedError`, whose
   ``queue_depth`` the wire format preserves and the gateway logs) is
   retried against the *same* shard after an exponential backoff: the key
   must not migrate just because its shard is busy;
4. **re-routes on worker death** — a connection failure (or a run of
   consecutive remote errors) opens the endpoint's **circuit breaker**
   and re-runs rendezvous routing over the survivors.  Rendezvous
   guarantees only the dead shard's keys move; the shared artifact store
   means the adopting shard serves any previously solved key from disk
   without a solver call.  After a cooldown the breaker is half-opened
   with a ``/health`` probe, so a recovered (or supervisor-respawned)
   worker takes its keys back automatically;
5. **enforces end-to-end deadlines** — a caller deadline bounds the whole
   retry budget, ships to the worker as the remaining-milliseconds
   deadline header, and expires as a wire-transported
   :class:`~repro.exceptions.ServiceTimeoutError` (HTTP 504, never
   retried).

``stats()`` aggregates every shard's exact
:class:`~repro.serve.ServiceStats` via
:meth:`~repro.serve.ServiceStats.merge` (dead shards contribute their
last-known snapshot), so the merged buckets still partition the forwarded
requests exactly; the gateway's own counters (routed / retried / re-routed
/ failed) sit alongside.  The same surface is exposed over HTTP —
``/solve``, ``/stats``, ``/metrics`` (Prometheus exposition of the exact
same counters), ``/trace`` (aggregated Chrome ``trace_event`` view of the
gateway plus every worker ring), ``/health``, ``/drain`` — by
:meth:`ClusterGateway.start_http`, with body-blind forwarding: the
instance digest rides in the ``X-Repro-Digest`` header, so the gateway
never parses instance JSON on the hot path.
"""

from __future__ import annotations

import asyncio
import json
import logging
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.config import SolveConfig
from repro.api.report import SolveReport
from repro.api.session import resolve_strategy_name
from repro.cluster import protocol
from repro.cluster.hashing import route
from repro.exceptions import (
    ClusterError,
    ServiceTimeoutError,
    WorkerUnavailableError,
)
from repro.obs import Observability, trace_id_for
from repro.obs.collect import (collect_cluster_stats, merged_snapshot,
                               render_merged)
from repro.serve.service import ServiceStats

__all__ = ["ClusterGateway", "WorkerEndpoint"]

logger = logging.getLogger("repro.cluster.gateway")

#: Errors that mean "this worker is gone", triggering failover.
_CONNECTION_ERRORS = (ConnectionError, OSError, asyncio.IncompleteReadError,
                      protocol._WireError)


class WorkerEndpoint:
    """Gateway-side state of one worker: address, pool, health, counters.

    Liveness is a **circuit breaker**, not a tombstone: a connection-level
    failure (or ``breaker_threshold`` consecutive remote errors) opens the
    breaker — ``alive`` goes ``False`` and routing instantly fails over,
    exactly like the old hard ``_mark_dead``.  But after ``breaker_cooldown``
    seconds the gateway half-opens it with a ``/health`` probe; a healthy
    answer (a recovered worker, or a supervised respawn on the same port)
    closes the breaker and the shard takes its keys back.  A worker that
    stays dead keeps failing its probes and so stays not-alive.
    """

    def __init__(self, host: str, port: int, *, max_inflight: int = 8) -> None:
        self.host = host
        self.port = int(port)
        #: Stable routing identity — survives gateway restarts (and
        #: supervised respawns on the same port), so two gateways in front
        #: of the same workers shard identically.
        self.node_id = f"{host}:{port}"
        self.alive = True
        self.semaphore = asyncio.Semaphore(max_inflight)
        self.pool: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
        #: Requests this gateway handed to the worker (includes retries).
        self.forwarded = 0
        #: Last successfully fetched stats snapshot; kept after death so
        #: the aggregate never loses a shard's served history.
        self.last_stats: Optional[ServiceStats] = None
        #: Final snapshots of previous incarnations (archived when a
        #: supervised respawn resets the worker's own counters to zero);
        #: merged into the aggregate so served history survives respawns.
        self.retired_stats: List[ServiceStats] = []
        #: Consecutive remote failures since the last success.
        self.failures = 0
        #: ``time.monotonic()`` of the breaker opening (``None`` = closed).
        self.breaker_opened_at: Optional[float] = None
        #: Last half-open probe attempt (throttles probing to one per
        #: cooldown window).
        self.last_probe_at: float = 0.0

    @property
    def breaker_open(self) -> bool:
        return self.breaker_opened_at is not None

    async def request(self, method: str, path: str, body: bytes = b"", *,
                      headers: Optional[Dict[str, str]] = None,
                      ) -> Tuple[int, bytes]:
        """One keep-alive HTTP exchange with this worker."""
        conn = self.pool.pop() if self.pool else None
        if conn is None:
            conn = await asyncio.open_connection(self.host, self.port)
        reader, writer = conn
        try:
            await protocol.write_request(writer, method, path, body,
                                         headers=headers)
            status, resp_headers, payload = await protocol.read_response(
                reader)
        except BaseException:
            writer.close()
            raise
        if resp_headers.get("connection", "").lower() == "close":
            writer.close()
        else:
            self.pool.append((reader, writer))
        return status, payload

    def close(self) -> None:
        """Drop every pooled connection (on death or gateway shutdown)."""
        while self.pool:
            _, writer = self.pool.pop()
            writer.close()


class ClusterGateway:
    """Route solve traffic over a fixed set of worker endpoints.

    Parameters
    ----------
    endpoints:
        ``(host, port)`` pairs of the workers (see
        :func:`repro.cluster.launcher.start_cluster` for spawning them).
    max_inflight:
        Per-worker bound on requests the gateway holds open concurrently.
    max_retries:
        Backoff attempts against an overloaded shard before the overload
        error is surfaced to the caller.
    backoff_base_ms / backoff_cap_ms:
        Exponential backoff window for overload retries (jittered).
    breaker_threshold:
        Consecutive remote failures (non-200, non-overload answers) that
        open a worker's circuit breaker.  Connection-level failures open
        it immediately regardless.
    breaker_cooldown:
        Seconds an open breaker waits before a half-open ``/health`` probe
        may close it again.
    obs:
        Optional :class:`repro.obs.Observability`.  When set, every
        submission mints a deterministic trace id
        (:func:`repro.obs.trace_id_for` over the request digest and the
        gateway's sequence counter), ships it to the shard as
        ``x-repro-trace-id``, and records a ``gateway.request`` span
        annotated with ``retry``/``reroutes`` counts plus a
        ``repro_gateway_request_seconds`` observation.  When ``None`` the
        hot-path cost is one ``is None`` check.
    """

    def __init__(self, endpoints: Sequence[Tuple[str, int]], *,
                 max_inflight: int = 8, max_retries: int = 6,
                 backoff_base_ms: float = 5.0,
                 backoff_cap_ms: float = 200.0,
                 breaker_threshold: int = 3,
                 breaker_cooldown: float = 0.25,
                 obs: Optional[Observability] = None) -> None:
        if not endpoints:
            raise ClusterError("a cluster needs at least one worker")
        self.workers: Dict[str, WorkerEndpoint] = {}
        for host, port in endpoints:
            endpoint = WorkerEndpoint(host, port, max_inflight=max_inflight)
            self.workers[endpoint.node_id] = endpoint
        self.max_retries = int(max_retries)
        self.backoff_base_ms = float(backoff_base_ms)
        self.backoff_cap_ms = float(backoff_cap_ms)
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = float(breaker_cooldown)
        self._rng = random.Random(0xC1F5)
        self._obs = obs
        self._counters: Dict[str, int] = {
            "requests": 0, "completed": 0, "remote_errors": 0,
            "overload_retries": 0, "reroutes": 0, "failures": 0,
            "timeouts": 0, "breaker_opens": 0, "breaker_closes": 0,
            "unavailable_waits": 0, "worker_respawns": 0}
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def alive_ids(self) -> List[str]:
        return [node_id for node_id, worker in self.workers.items()
                if worker.alive]

    def route_digest(self, digest: str) -> WorkerEndpoint:
        """The alive shard owning ``digest`` (rendezvous over survivors)."""
        alive = self.alive_ids()
        if not alive:
            raise WorkerUnavailableError("no alive workers in the cluster")
        return self.workers[route(digest, alive)]

    def _mark_dead(self, worker: WorkerEndpoint, reason: str) -> None:
        """Open ``worker``'s circuit breaker (the historical entry point)."""
        self._open_breaker(worker, reason)

    def _open_breaker(self, worker: WorkerEndpoint, reason: str) -> None:
        if worker.alive:
            worker.alive = False
            worker.breaker_opened_at = time.monotonic()
            worker.last_probe_at = worker.breaker_opened_at
            worker.failures = 0
            worker.close()
            self._counters["breaker_opens"] += 1
            logger.warning(
                "worker %s breaker opened (%s); re-routing its keys",
                worker.node_id, reason)

    def _close_breaker(self, worker: WorkerEndpoint) -> None:
        if not worker.alive:
            worker.alive = True
            worker.breaker_opened_at = None
            worker.failures = 0
            self._counters["breaker_closes"] += 1
            logger.info("worker %s breaker closed; shard takes keys back",
                        worker.node_id)

    def _note_remote_failure(self, worker: WorkerEndpoint) -> None:
        """Count one non-connection remote failure toward the breaker."""
        worker.failures += 1
        if worker.failures >= self.breaker_threshold:
            self._open_breaker(
                worker, f"{worker.failures} consecutive remote failures")

    async def probe_open_breakers(self) -> None:
        """Half-open every cooled-down breaker with a ``/health`` probe.

        Called on the solve path (cheap when no breaker is open) and by
        :meth:`health`.  A worker that answers closes its breaker — a
        recovered process, or a supervised respawn listening on the same
        port; one that does not stays open until the next cooldown.
        """
        now = time.monotonic()
        candidates = [
            worker for worker in self.workers.values()
            if worker.breaker_open
            and now - worker.last_probe_at >= self.breaker_cooldown]
        if not candidates:
            return

        async def probe(worker: WorkerEndpoint) -> None:
            worker.last_probe_at = time.monotonic()
            try:
                status, _ = await worker.request("GET", "/health")
            except _CONNECTION_ERRORS:
                return  # still dead; breaker stays open
            if status == 200:
                self._close_breaker(worker)

        await asyncio.gather(*(probe(worker) for worker in candidates))

    # ------------------------------------------------------------------ #
    # Solve path
    # ------------------------------------------------------------------ #
    async def submit_encoded(self, body: bytes, digest: str, *,
                             deadline: Optional[float] = None,
                             trace_id: Optional[str] = None,
                             ) -> Tuple[int, bytes]:
        """Route one already-serialised solve request; returns the raw
        ``(status, payload)`` of the shard that answered.

        Connection failures fail over (re-route among survivors); 503
        overload responses back off and retry the same shard; a draining
        shard (``ServiceClosedError`` on the wire) trips the breaker like
        a dead connection.  ``deadline`` (absolute :func:`time.monotonic`)
        bounds the whole retry budget: the remaining budget ships to the
        worker in the deadline header, backoff sleeps never outlast it,
        and an expired deadline returns a 504 immediately instead of
        another attempt.  A worker's own 504 is final — retrying an
        already-expired request elsewhere cannot help.

        With observability on, the whole retry loop is one
        ``gateway.request`` span (annotated ``retry=<overload retries>``
        and ``reroutes=<failovers>``); ``trace_id`` lets a front-door
        client supply its own id, otherwise a deterministic one is minted
        from the digest and the gateway's sequence counter and shipped to
        the shard in the trace header.
        """
        self._counters["requests"] += 1
        obs = self._obs
        span = None
        if obs is not None:
            if trace_id is None:
                trace_id = trace_id_for(digest,
                                        obs.tracer.next_sequence())
            span = obs.tracer.span("gateway.request", trace_id=trace_id,
                                   digest=digest)
        overload_attempts = 0
        unavailable_waits = 0
        reroutes = 0
        try:
            while True:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    self._counters["timeouts"] += 1
                    self._counters["failures"] += 1
                    return protocol.error_response(ServiceTimeoutError(
                        "deadline expired in the gateway retry loop",
                        elapsed=-remaining))
                await self.probe_open_breakers()
                headers = {protocol.DIGEST_HEADER: digest}
                if span is not None:
                    headers[protocol.TRACE_HEADER] = trace_id
                if remaining is not None:
                    headers[protocol.DEADLINE_HEADER] = \
                        f"{remaining * 1e3:.3f}"
                try:
                    worker = self.route_digest(digest)
                except WorkerUnavailableError as exc:
                    # Every breaker is open at once (e.g. a connection-fault
                    # storm hit all shards within one cooldown).  The workers
                    # may be healthy — or a supervisor may be respawning them —
                    # so wait out up to max_retries cooldowns for a half-open
                    # probe to close a breaker before failing the caller.
                    unavailable_waits += 1
                    if unavailable_waits > self.max_retries:
                        self._counters["failures"] += 1
                        return protocol.error_response(exc)
                    self._counters["unavailable_waits"] += 1
                    delay = self.breaker_cooldown
                    if remaining is not None:
                        delay = min(delay, max(0.0, remaining))
                    await asyncio.sleep(delay)
                    continue
                async with worker.semaphore:
                    worker.forwarded += 1
                    try:
                        status, payload = await worker.request(
                            "POST", "/solve", body, headers=headers)
                    except _CONNECTION_ERRORS as exc:
                        self._counters["reroutes"] += 1
                        reroutes += 1
                        self._open_breaker(worker, repr(exc))
                        continue
                if status == 503:
                    retryable, queue_depth = _classify_503(payload)
                    if retryable == "closed":
                        # A draining/stopped shard cannot take the key back;
                        # fail over exactly like a dead connection.
                        self._counters["reroutes"] += 1
                        reroutes += 1
                        self._open_breaker(worker,
                                           "service closed (draining)")
                        continue
                    overload_attempts += 1
                    if overload_attempts > self.max_retries:
                        self._counters["failures"] += 1
                        return status, payload
                    delay = self._backoff_seconds(overload_attempts)
                    if remaining is not None:
                        # Never sleep past the caller's deadline; the expiry
                        # check at the top of the loop turns it into a 504.
                        delay = min(delay, max(0.0, remaining))
                    self._counters["overload_retries"] += 1
                    logger.info(
                        "worker %s overloaded (queue depth %s); backoff retry "
                        "%d/%d in %.1f ms", worker.node_id, queue_depth,
                        overload_attempts, self.max_retries, delay * 1e3)
                    await asyncio.sleep(delay)
                    continue
                if status == 200:
                    worker.failures = 0
                    self._counters["completed"] += 1
                elif status == 504:
                    self._counters["timeouts"] += 1
                    self._counters["remote_errors"] += 1
                else:
                    self._counters["remote_errors"] += 1
                    self._note_remote_failure(worker)
                if span is not None:
                    span.annotate("status", status)
                return status, payload
        finally:
            if span is not None:
                span.annotate("retry", overload_attempts)
                if reroutes:
                    span.annotate("reroutes", reroutes)
                span.finish()
                obs.latency_histogram(
                    "repro_gateway_request_seconds",
                    "End-to-end gateway request wall time, retries "
                    "included.").observe(span.duration)

    def _backoff_seconds(self, attempt: int) -> float:
        window = min(self.backoff_cap_ms,
                     self.backoff_base_ms * (2.0 ** (attempt - 1)))
        return (window * (0.5 + 0.5 * self._rng.random())) / 1000.0

    async def submit(self, instance, strategy: Optional[str] = None, *,
                     config: Optional[SolveConfig] = None,
                     deadline: Optional[float] = None) -> SolveReport:
        """Solve one instance through the cluster; raises remote errors.

        ``deadline`` (absolute :func:`time.monotonic`) propagates all the
        way to the shard's dispatcher; an expired request raises
        :class:`~repro.exceptions.ServiceTimeoutError`.
        """
        config = SolveConfig() if config is None else config
        name = resolve_strategy_name(strategy)
        body, digest = protocol.encode_solve_request(instance, name, config)
        status, payload = await self.submit_encoded(body, digest,
                                                    deadline=deadline)
        protocol.raise_for_response(status, payload)
        return protocol.decode_report(payload)

    # ------------------------------------------------------------------ #
    # Cluster-wide observability & lifecycle
    # ------------------------------------------------------------------ #
    async def refresh_worker_stats(self) -> None:
        """Fetch ``/stats`` from every alive shard (marks dead on failure)."""
        async def fetch(worker: WorkerEndpoint) -> None:
            try:
                status, payload = await worker.request("GET", "/stats")
            except _CONNECTION_ERRORS as exc:
                self._mark_dead(worker, repr(exc))
                return
            if status == 200:
                worker.last_stats = ServiceStats.from_dict(
                    json.loads(payload.decode("utf-8")))

        await asyncio.gather(*(fetch(worker)
                               for worker in self.workers.values()
                               if worker.alive))

    def note_worker_respawn(self, node_id: str) -> None:
        """Record that the worker at ``node_id`` was respawned in place.

        Called by the launcher's supervisor once the replacement process
        announced readiness on the *same* port.  The dead incarnation's
        last snapshot is archived into ``retired_stats`` (the replacement's
        counters restart from zero, and the aggregate must not lose the
        served history), the stale connection pool is dropped, and the
        breaker is closed so routing returns immediately — the replacement
        is warm via the shared store.
        """
        worker = self.workers.get(node_id)
        if worker is None:
            return
        if worker.last_stats is not None:
            worker.retired_stats.append(worker.last_stats)
            worker.last_stats = None
        worker.close()
        self._counters["worker_respawns"] += 1
        self._close_breaker(worker)

    async def stats(self, *, refresh: bool = True) -> Dict[str, object]:
        """The aggregated cluster picture.

        ``merged`` is the exact :meth:`~repro.serve.ServiceStats.merge` of
        every shard's snapshot — dead shards contribute their last-known
        one, respawned shards additionally contribute the archived
        snapshots of their previous incarnations — so its buckets
        partition the forwarded requests exactly; ``workers`` holds the
        per-shard snapshots, breaker state and routing counters;
        ``gateway`` the gateway's own accounting (including
        ``breaker_opens`` / ``breaker_closes`` / ``timeouts`` /
        ``worker_respawns``).
        """
        if refresh:
            await self.refresh_worker_stats()
        snapshots: List[ServiceStats] = []
        for worker in self.workers.values():
            snapshots.extend(worker.retired_stats)
            if worker.last_stats is not None:
                snapshots.append(worker.last_stats)
        merged = ServiceStats().merge(*snapshots)
        return {
            "gateway": dict(self._counters),
            "workers": {
                node_id: {
                    "alive": worker.alive,
                    "breaker_open": worker.breaker_open,
                    "forwarded": worker.forwarded,
                    "respawns": len(worker.retired_stats),
                    "stats": None if worker.last_stats is None
                    else worker.last_stats.to_dict(),
                }
                for node_id, worker in self.workers.items()},
            "merged": merged.to_dict(),
        }

    async def metrics_registries(self, *, refresh: bool = True) -> List:
        """The registries behind ``GET /metrics``: the cluster ``stats()``
        mapping projected through :func:`repro.obs.collect.collect_cluster_stats`
        (exact numeric equality with the legacy surface by construction),
        plus the gateway's own live registry when observability is on.
        """
        registries = [collect_cluster_stats(
            await self.stats(refresh=refresh))]
        if self._obs is not None:
            registries.append(self._obs.registry)
        return registries

    async def trace(self, *, last: Optional[int] = None,
                    aggregate: bool = True) -> Dict[str, object]:
        """Chrome ``trace_event`` view of the cluster.

        The gateway's own spans, plus — when ``aggregate`` — every alive
        worker's ``/trace`` ring, so one cross-process trace id groups
        the ``gateway.request`` span with the shard's ``worker.solve`` /
        ``service.batch`` / kernel spans.  Events are ordered
        deterministically (timestamp, then service, then span id).
        """
        events: List[Dict[str, object]] = [] if self._obs is None else \
            self._obs.tracer.chrome_trace(last=last)["traceEvents"]
        if aggregate:
            path = "/trace" if last is None else f"/trace?last={int(last)}"

            async def fetch(worker: WorkerEndpoint) -> List:
                try:
                    status, payload = await worker.request("GET", path)
                except _CONNECTION_ERRORS:
                    return []
                if status != 200:
                    return []
                try:
                    decoded = json.loads(payload.decode("utf-8"))
                except ValueError:
                    return []
                return decoded.get("traceEvents", [])

            chunks = await asyncio.gather(
                *(fetch(worker) for worker in self.workers.values()
                  if worker.alive))
            for chunk in chunks:
                events.extend(chunk)
        events.sort(key=lambda e: (float(e.get("ts", 0.0)),
                                   str(e.get("pid", "")),
                                   str(e.get("tid", ""))))
        return {"traceEvents": events}

    async def drain(self, *, timeout: float = 60.0) -> bool:
        """Drain every alive shard; ``True`` when all report drained."""
        body = json.dumps({"timeout": timeout}).encode("utf-8")

        async def drain_one(worker: WorkerEndpoint) -> bool:
            try:
                status, payload = await worker.request("POST", "/drain", body)
            except _CONNECTION_ERRORS as exc:
                self._mark_dead(worker, repr(exc))
                return False
            return status == 200 and json.loads(payload).get("drained", False)

        results = await asyncio.gather(
            *(drain_one(worker) for worker in self.workers.values()
              if worker.alive))
        return all(results) if results else True

    async def shutdown_workers(self) -> None:
        """Ask every alive shard to shut down (used by the launcher)."""
        async def stop_one(worker: WorkerEndpoint) -> None:
            try:
                await worker.request("POST", "/shutdown")
            except _CONNECTION_ERRORS:
                pass
            worker.alive = False
            worker.close()

        await asyncio.gather(*(stop_one(worker)
                               for worker in self.workers.values()
                               if worker.alive))

    async def health(self) -> Dict[str, object]:
        """Probe ``/health`` on every shard; returns the liveness map.

        Every worker is probed, breaker-open ones included — a health
        check exists to see past the gateway's own routing state — and
        cooled-down breakers get their half-open probe first, so a
        recovered shard shows up alive here, not only on the solve path.
        """
        await self.probe_open_breakers()

        async def probe(worker: WorkerEndpoint):
            try:
                status, payload = await worker.request("GET", "/health")
            except _CONNECTION_ERRORS:
                return worker.node_id, None
            if status != 200:
                return worker.node_id, None
            return worker.node_id, json.loads(payload.decode("utf-8"))

        results = dict(await asyncio.gather(
            *(probe(worker) for worker in self.workers.values())))
        return {
            "status": "ok" if any(value is not None
                                  for value in results.values()) else "down",
            "workers": {
                node_id: {"alive": worker.alive,
                          "health": results.get(node_id)}
                for node_id, worker in self.workers.items()},
        }

    def close(self) -> None:
        """Drop every pooled connection (the workers keep running)."""
        for worker in self.workers.values():
            worker.close()

    # ------------------------------------------------------------------ #
    # HTTP front door
    # ------------------------------------------------------------------ #
    async def start_http(self, *, host: str = "127.0.0.1",
                         port: int = 0) -> int:
        """Expose the gateway itself over HTTP; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=host, port=port)
        return self._server.sockets[0].getsockname()[1]

    async def stop_http(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                message = await protocol.read_request(reader)
                if message is None:
                    break
                method, path, headers, body = message
                result = await self._dispatch(method, path, headers, body)
                # Routes answer (status, payload) or, for non-JSON bodies
                # like the Prometheus exposition, (status, payload, type).
                if len(result) == 3:
                    status, payload, content_type = result
                else:
                    status, payload = result
                    content_type = "application/json"
                close = headers.get("connection", "").lower() == "close"
                await protocol.write_response(writer, status, payload,
                                              close=close,
                                              content_type=content_type)
                if close:
                    break
        except asyncio.CancelledError:
            pass  # event-loop teardown at shutdown; drop the connection
        except _CONNECTION_ERRORS:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _dispatch(self, method: str, path: str,
                        headers: Dict[str, str], body: bytes):
        route_key = (method, path.split("?", 1)[0])
        if route_key == ("POST", "/solve"):
            digest = headers.get(protocol.DIGEST_HEADER)
            if digest is None:
                # Slow path for header-less clients: the digest is in the
                # body (every encoder puts it there).
                try:
                    digest = json.loads(body.decode("utf-8"))["digest"]
                except Exception as exc:  # noqa: BLE001 - peer input
                    return protocol.error_response(ClusterError(
                        f"solve request carries no routable digest: {exc}"))
            deadline = None
            deadline_ms = headers.get(protocol.DEADLINE_HEADER)
            if deadline_ms is not None:
                try:
                    deadline = time.monotonic() \
                        + max(0.0, float(deadline_ms)) / 1e3
                except ValueError:
                    return protocol.error_response(ClusterError(
                        f"malformed deadline header {deadline_ms!r}"))
            try:
                return await self.submit_encoded(
                    body, digest, deadline=deadline,
                    trace_id=headers.get(protocol.TRACE_HEADER))
            except BaseException as exc:  # noqa: BLE001 - mapped to wire
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                return protocol.error_response(exc)
        if route_key == ("GET", "/stats"):
            return 200, json.dumps(await self.stats(),
                                   sort_keys=True).encode("utf-8")
        if route_key == ("GET", "/metrics"):
            registries = await self.metrics_registries()
            if "format=json" in path.partition("?")[2]:
                return 200, json.dumps(merged_snapshot(*registries),
                                       sort_keys=True).encode("utf-8")
            return (200, render_merged(*registries).encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8")
        if route_key == ("GET", "/trace"):
            query = path.partition("?")[2]
            last = None
            for part in query.split("&"):
                if part.startswith("last="):
                    try:
                        last = int(part[5:])
                    except ValueError:
                        return protocol.error_response(ClusterError(
                            f"malformed {part!r} query parameter"))
            aggregate = "local=1" not in query
            trace = await self.trace(last=last, aggregate=aggregate)
            return 200, json.dumps(trace, sort_keys=True).encode("utf-8")
        if route_key == ("GET", "/health"):
            return 200, json.dumps(await self.health(),
                                   sort_keys=True).encode("utf-8")
        if route_key == ("POST", "/drain"):
            drained = await self.drain()
            return 200, json.dumps({"drained": drained}).encode("utf-8")
        return 404, json.dumps({
            "error": "ClusterError",
            "message": f"no route {method} {path}"}).encode("utf-8")


def _classify_503(payload: bytes) -> Tuple[str, Optional[int]]:
    """Split a 503 into ``("overloaded", depth)`` vs ``("closed", None)``."""
    try:
        decoded = json.loads(payload.decode("utf-8"))
    except Exception:  # noqa: BLE001 - non-JSON 503
        return "overloaded", None
    if decoded.get("error") == "ServiceClosedError":
        return "closed", None
    return "overloaded", decoded.get("queue_depth")
