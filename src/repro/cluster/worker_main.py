"""Process entry point of one cluster shard.

Kept separate from :mod:`repro.cluster.worker` (which the package
``__init__`` imports for its public classes) so ``python -m
repro.cluster.worker_main`` never re-executes an already-imported module
— the ``runpy`` double-import warning a ``-m``-runnable module inside an
importing package would otherwise trigger.
"""

from repro.cluster.worker import main

if __name__ == "__main__":
    raise SystemExit(main())
