"""Cluster benchmark: the hot-key stream through gateway + N shards.

Reuses the exact synthetic workload of ``repro serve bench``
(:func:`repro.serve.bench.build_workload` — every key touched once, then a
popularity-skewed tail) and pushes it through a real cluster: worker
*processes* behind a :class:`~repro.cluster.gateway.ClusterGateway`.  Per
pass it records wall time, throughput and the *exact* cross-shard stats
delta (:meth:`~repro.serve.ServiceStats.merge` of every shard), so the
record proves the cluster's two serving guarantees:

* a 100%-warm second pass performs **zero solver calls on any shard**
  (the merged ``enqueued``/``batches`` deltas are sums of non-negative
  per-shard counters, so zero aggregate means zero everywhere);
* the aggregated buckets **partition the forwarded requests exactly**
  (each shard's partition identity survives summation).

On throughput scaling: each shard's cold-pass service rate is bounded by
Little's law at ``max_inflight / (batch fill window + batch service
time)`` — the gateway holds at most ``max_inflight`` requests open
against a shard, and the shard's dispatcher holds a micro-batch open for
``max_wait_ms`` before solving it.  Adding shards multiplies the open
batch windows, which is precisely the horizontal win this benchmark
measures (``scripts/bench_perf.py`` records it as the
``cluster_scaling`` series).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.api.config import SolveConfig
from repro.cluster.launcher import ClusterHandle, start_cluster
from repro.obs.metrics import histogram_quantile
from repro.serve.bench import _delta, build_workload
from repro.serve.service import ServiceStats

__all__ = ["ClusterBenchPass", "ClusterBenchResult", "run_cluster_bench"]


@dataclass(frozen=True)
class ClusterBenchPass:
    """One pass over the stream: wall time + the exact cross-shard delta."""

    index: int
    seconds: float
    requests: int
    #: Merged per-shard stats delta for this pass (exact partition).
    merged: ServiceStats
    #: Requests the gateway forwarded per shard during this pass.
    forwarded: Dict[str, int]
    #: Per-shard ``enqueued`` delta: solver-bound requests on each shard.
    shard_enqueued: Dict[str, int]
    #: ``{"p50": ..., "p95": ..., "p99": ...}`` in seconds, derived from
    #: the gateway's ``repro_gateway_request_seconds`` histogram *delta*
    #: over this pass; ``None`` when the bench ran without observability.
    latency_quantiles: Optional[Dict[str, float]] = None

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else 0.0

    @property
    def hit_rate(self) -> float:
        """Cache-hit percentage of the merged pass."""
        return (100.0 * self.merged.hits / self.merged.requests
                if self.merged.requests > 0 else 0.0)

    @property
    def solver_calls(self) -> int:
        """Requests that reached a solver queue anywhere in the cluster."""
        return self.merged.enqueued

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "seconds": self.seconds,
            "requests": self.requests,
            "requests_per_second": self.requests_per_second,
            "hit_rate": self.hit_rate,
            "solver_calls": self.solver_calls,
            "forwarded": dict(self.forwarded),
            "shard_enqueued": dict(self.shard_enqueued),
            "latency_quantiles": None if self.latency_quantiles is None
            else dict(self.latency_quantiles),
            "merged": self.merged.to_dict(),
        }


@dataclass
class ClusterBenchResult:
    """Outcome of :func:`run_cluster_bench`."""

    n_workers: int
    passes: List[ClusterBenchPass] = field(default_factory=list)
    gateway: Dict[str, int] = field(default_factory=dict)
    #: Resilience counters of the run: deadline expiries, breaker trips,
    #: supervised respawns, quarantined artifacts.  All zeros on a healthy
    #: un-faulted benchmark — which is itself the claim worth tracking.
    resilience: Dict[str, int] = field(default_factory=dict)
    final: Optional[Dict[str, object]] = None

    @property
    def consistent(self) -> bool:
        """Every pass's merged buckets partition its requests exactly."""
        return all(record.merged.consistent for record in self.passes)

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_workers": self.n_workers,
            "consistent": self.consistent,
            "passes": [record.to_dict() for record in self.passes],
            "gateway": dict(self.gateway),
            "resilience": dict(self.resilience),
            "final": self.final,
        }


def _gateway_latency_snapshot(cluster: ClusterHandle):
    """The gateway's request-latency histogram snapshot (``None`` when
    the cluster runs without observability)."""
    obs = getattr(cluster.gateway, "_obs", None)
    if obs is None:
        return None
    return obs.latency_histogram("repro_gateway_request_seconds").snapshot()


def _per_worker(stats: Dict[str, object], key: str) -> Dict[str, int]:
    """Pull one per-shard counter out of a gateway stats payload."""
    values: Dict[str, int] = {}
    for node_id, entry in stats["workers"].items():  # type: ignore[union-attr]
        if key == "forwarded":
            values[node_id] = entry["forwarded"]
        else:
            snapshot = entry.get("stats") or {}
            values[node_id] = snapshot.get(key, 0)
    return values


def run_cluster_bench(*, num_requests: int = 400, num_distinct: int = 320,
                      num_links: int = 4, seed: int = 0, passes: int = 2,
                      strategy: str = "optop", n_workers: int = 2,
                      store_dir: Optional[str] = None,
                      max_inflight: int = 2, max_batch: int = 64,
                      max_wait_ms: float = 20.0, max_queue: int = 10_000,
                      cluster: Optional[ClusterHandle] = None,
                      obs: bool = False,
                      ) -> ClusterBenchResult:
    """Drive the hot-key stream through a cluster ``passes`` times.

    The defaults put each shard in the latency-bound regime described in
    the module docstring (small ``max_inflight``, a real ``max_wait_ms``
    batch window), which is where shard count — not raw CPU — is the
    binding constraint, so the scaling measurement is meaningful even on
    a single-core machine.  Pass a prebuilt ``cluster`` to benchmark an
    externally configured one (its lifecycle then stays the caller's).

    ``obs=True`` (or a prebuilt cluster with observability on) adds
    per-pass ``latency_quantiles`` — p50/p95/p99 seconds computed from
    the gateway latency histogram's delta over the pass.
    """
    config = SolveConfig(compute_nash=False)
    instances, schedule = build_workload(
        num_requests=num_requests, num_distinct=num_distinct,
        num_links=num_links, seed=seed)
    own_cluster = cluster is None
    if own_cluster:
        cluster = start_cluster(
            n_workers=n_workers, store_dir=store_dir,
            max_inflight=max_inflight, max_batch=max_batch,
            max_wait_ms=max_wait_ms, max_queue=max_queue, obs=obs)
    result = ClusterBenchResult(n_workers=len(cluster.workers))
    try:
        before_stats = cluster.stats()
        previous = ServiceStats.from_dict(dict(before_stats["merged"]))
        prev_forwarded = _per_worker(before_stats, "forwarded")
        prev_enqueued = _per_worker(before_stats, "enqueued")
        hist_before = _gateway_latency_snapshot(cluster)
        for pass_index in range(passes):
            start = time.perf_counter()
            futures = [cluster.submit(instances[i], strategy, config=config)
                       for i in schedule]
            for future in futures:
                future.result(timeout=600.0)
            seconds = time.perf_counter() - start
            now_stats = cluster.stats()
            now = ServiceStats.from_dict(dict(now_stats["merged"]))
            forwarded = _per_worker(now_stats, "forwarded")
            enqueued = _per_worker(now_stats, "enqueued")
            quantiles = None
            hist_now = _gateway_latency_snapshot(cluster)
            if hist_now is not None:
                quantiles = {
                    f"p{int(q * 100)}": histogram_quantile(
                        hist_now, q, baseline=hist_before)
                    for q in (0.50, 0.95, 0.99)}
            result.passes.append(ClusterBenchPass(
                index=pass_index, seconds=seconds, requests=len(schedule),
                merged=_delta(previous, now),
                forwarded={node: forwarded[node]
                           - prev_forwarded.get(node, 0)
                           for node in forwarded},
                shard_enqueued={node: enqueued[node]
                                - prev_enqueued.get(node, 0)
                                for node in enqueued},
                latency_quantiles=quantiles))
            previous, prev_forwarded, prev_enqueued = (
                now, forwarded, enqueued)
            hist_before = hist_now
        final = cluster.stats()
        gateway_counters = dict(final["gateway"])  # type: ignore[arg-type]
        merged_final = dict(final["merged"])  # type: ignore[arg-type]
        result.gateway = gateway_counters
        result.resilience = {
            "gateway_timeouts": gateway_counters.get("timeouts", 0),
            "breaker_opens": gateway_counters.get("breaker_opens", 0),
            "breaker_closes": gateway_counters.get("breaker_closes", 0),
            "worker_respawns": gateway_counters.get("worker_respawns", 0),
            "service_timeouts": merged_final.get("timeouts", 0),
            "quarantined": sum(1 for _ in Path(cluster.store_dir).glob(
                "??/*.json.corrupt.*")),
        }
        result.final = final
    finally:
        if own_cluster:
            cluster.shutdown()
    return result
