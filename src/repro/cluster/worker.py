"""`WorkerServer`: one cluster shard — a `SolveService` behind asyncio HTTP.

A worker owns exactly one :class:`~repro.serve.SolveService` (micro-batching,
coalescing, tiered cache) and exposes it on a localhost TCP port:

``POST /solve``
    One solve request (:mod:`repro.cluster.protocol` wire format).  The
    submission runs in the default executor — ``SolveService.submit`` may
    touch the disk for its tier-2 probe, which must not stall the event
    loop — and the resulting future is awaited without blocking, so one
    worker serves many concurrent connections while its dispatcher batches
    the misses.  Backpressure (``ServiceOverloadedError``) and a draining
    service map onto 503 responses the gateway knows how to retry.
``GET /stats``
    The exact :class:`~repro.serve.ServiceStats` snapshot as JSON — what
    the gateway aggregates with :meth:`~repro.serve.ServiceStats.merge`.
``GET /metrics``
    Prometheus text exposition: the service's legacy counters projected
    through :mod:`repro.obs.collect` at scrape time (so every number
    equals the ``/stats`` surface exactly), merged with the worker's live
    latency histograms when observability is on.  ``?format=json`` returns
    the same snapshot as JSON.
``GET /trace``
    The span ring buffer as Chrome ``trace_event`` JSON (empty when
    observability is off); ``?last=N`` keeps the newest N spans.
``GET /health``
    Liveness: pid, port, uptime and the request count so far.
``POST /drain``
    Blocks (in the executor) until every accepted request has resolved;
    the lifecycle hook the launcher calls before shutdown.
``POST /shutdown``
    Acknowledges, then stops the server and shuts the service down.

The worker's tier-2 cache is the *shared* artifact store of the cluster:
every shard points at one directory (``TieredCache(shared_store=True)``),
so a cold shard — just restarted, or newly owning keys after a peer died —
answers any key the cluster has ever solved from disk instead of
re-solving it.

Run one directly with ``python -m repro.cluster.worker_main --port 0
--store DIR``; it prints ``REPRO_WORKER_READY port=<p> pid=<pid>`` once it
accepts connections (the launcher parses that line).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import time
from functools import partial
from typing import Optional

from urllib.parse import parse_qs

from repro.cluster import protocol
from repro.exceptions import ModelError
from repro.faults.injector import FaultInjector
from repro.faults.spec import FaultPlan
from repro.obs import Observability
from repro.obs.collect import (collect_service_stats, merged_snapshot,
                               render_merged)
from repro.serve.cache import TieredCache
from repro.serve.service import SolveService
from repro.study.store import ArtifactStore

__all__ = ["WorkerServer", "build_worker_service", "main"]


def build_worker_service(*, store_dir: Optional[str] = None,
                         max_batch: int = 64, max_wait_ms: float = 2.0,
                         max_queue: int = 10_000,
                         max_workers: Optional[int] = 0,
                         max_cache_entries: int = 4096,
                         fault_injector: Optional[FaultInjector] = None,
                         obs: Optional[Observability] = None,
                         ) -> SolveService:
    """A shard's `SolveService`: tiered cache over the shared store.

    One ``fault_injector`` (when given) is shared by the artifact store
    and the service, so a single chaos plan scripts both layers.  The
    same sharing applies to ``obs``: the worker server and its service
    record onto one registry/tracer, so a worker's ``/trace`` ring holds
    the ``worker.solve`` span *and* the ``service.batch`` span of the
    same request.
    """
    store = None if store_dir is None else \
        ArtifactStore(store_dir, fault_injector=fault_injector)
    cache = TieredCache(store=store, max_entries=max_cache_entries,
                        shared_store=True)
    return SolveService(cache=cache, max_batch=max_batch,
                        max_wait_ms=max_wait_ms, max_queue=max_queue,
                        max_workers=max_workers,
                        fault_injector=fault_injector, obs=obs)


class WorkerServer:
    """Serve one `SolveService` over the cluster wire protocol.

    Parameters
    ----------
    service:
        The service to expose; built via :func:`build_worker_service` when
        omitted.
    host / port:
        Bind address; port ``0`` asks the OS for an ephemeral port (read
        the real one from :attr:`port` after :meth:`start`).
    store_dir / max_batch / max_wait_ms / max_queue / max_workers:
        Forwarded to :func:`build_worker_service` when no ``service`` is
        given.
    fault_injector:
        Optional :class:`repro.faults.FaultInjector` drawn at the worker's
        own hook sites — ``worker_sigkill`` on the solve path,
        ``conn_drop`` / ``response_truncate`` on the response path — and
        (when no ``service`` is given) shared with the service and store.
    obs:
        Optional :class:`repro.obs.Observability`.  When set, every
        ``/solve`` records a ``worker.solve`` span under the request's
        ``x-repro-trace-id`` plus a ``repro_worker_request_seconds``
        observation, and (when no ``service`` is given) the service shares
        the same handle for its ``service.batch`` / kernel spans.  When
        ``None`` the cost is one ``is None`` check per request.
    """

    def __init__(self, service: Optional[SolveService] = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 store_dir: Optional[str] = None, max_batch: int = 64,
                 max_wait_ms: float = 2.0, max_queue: int = 10_000,
                 max_workers: Optional[int] = 0,
                 fault_injector: Optional[FaultInjector] = None,
                 obs: Optional[Observability] = None) -> None:
        self._faults = fault_injector
        self._obs = obs
        self.service = service if service is not None else \
            build_worker_service(store_dir=store_dir, max_batch=max_batch,
                                 max_wait_ms=max_wait_ms,
                                 max_queue=max_queue,
                                 max_workers=max_workers,
                                 fault_injector=fault_injector, obs=obs)
        self.host = host
        self._requested_port = int(port)
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        """The bound TCP port (valid after :meth:`start`)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "WorkerServer":
        """Bind the socket and start the service; returns ``self``."""
        self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host,
            port=self._requested_port)
        return self

    async def serve_until_shutdown(self) -> None:
        """Serve until ``POST /shutdown`` (or :meth:`stop`) is requested."""
        await self._shutdown.wait()
        await self.stop()

    async def stop(self) -> None:
        """Close the listener and shut the service down (drains first)."""
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, partial(self.service.shutdown, wait=True, timeout=60.0))

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                message = await protocol.read_request(reader)
                if message is None:
                    break
                method, path, headers, body = message
                result = await self._dispatch(method, path, headers, body)
                # Routes answer (status, payload) or, for non-JSON bodies
                # like the Prometheus exposition, (status, payload, type).
                if len(result) == 3:
                    status, payload, content_type = result
                else:
                    status, payload = result
                    content_type = "application/json"
                if self._faults is not None \
                        and await self._inject_response_fault(
                            writer, status, payload):
                    break
                close = headers.get("connection", "").lower() == "close"
                await protocol.write_response(writer, status, payload,
                                              close=close,
                                              content_type=content_type)
                if close:
                    break
        except asyncio.CancelledError:
            pass  # event-loop teardown at shutdown; drop the connection
        except (ConnectionError, asyncio.IncompleteReadError,
                protocol._WireError):
            pass  # a vanished or malformed peer only costs its connection
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _inject_response_fault(self, writer: asyncio.StreamWriter,
                                     status: int, payload: bytes) -> bool:
        """Chaos hook on the response path; ``True`` = connection is dead.

        ``conn_drop`` closes the connection without answering at all;
        ``response_truncate`` ships roughly half of the framed bytes and
        then closes.  Either way the gateway sees a connection-level
        failure and must fail over / retry — exactly the condition the
        faults exist to exercise.
        """
        if self._faults.draw("conn_drop") is not None:
            return True  # the finally block closes the writer unanswered
        if self._faults.draw("response_truncate") is not None:
            head = (f"HTTP/1.1 {status} X\r\n"
                    f"content-type: application/json\r\n"
                    f"content-length: {len(payload)}\r\n\r\n"
                    ).encode("latin-1")
            framed = head + payload
            writer.write(framed[:max(1, len(framed) // 2)])
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            return True
        return False

    async def _dispatch(self, method: str, path: str,
                        headers, body: bytes):
        route = (method, path.split("?", 1)[0])
        if route == ("POST", "/solve"):
            return await self._handle_solve(headers, body)
        if route == ("GET", "/stats"):
            return 200, json.dumps(
                self.service.stats().to_dict(), sort_keys=True).encode()
        if route == ("GET", "/metrics"):
            return self._handle_metrics(path)
        if route == ("GET", "/trace"):
            return self._handle_trace(path)
        if route == ("GET", "/health"):
            health = {
                "status": "ok",
                "pid": os.getpid(),
                "port": self.port,
                "uptime_seconds": time.monotonic() - self._started_at,
                "requests": self.service.stats().requests,
            }
            if self._faults is not None:
                health["faults_injected"] = self._faults.stats()
            return 200, json.dumps(health, sort_keys=True).encode()
        if route == ("POST", "/drain"):
            return await self._handle_drain(body)
        if route == ("POST", "/shutdown"):
            self._shutdown.set()
            return 200, b'{"status": "shutting down"}'
        return 404, json.dumps({
            "error": "ClusterError",
            "message": f"no route {method} {path}"}).encode()

    def _handle_metrics(self, path: str):
        """``GET /metrics``: legacy counters re-collected at scrape time.

        The registry is rebuilt from the live ``stats()`` snapshot on
        every scrape, so every series is numerically identical to the
        ``/stats`` answer of the same instant by construction; the live
        obs registry (latency histograms) is merged in when enabled.
        """
        query = parse_qs(path.partition("?")[2])
        registries = [collect_service_stats(self.service.stats())]
        if self._obs is not None:
            registries.append(self._obs.registry)
        if query.get("format", [""])[-1] == "json":
            return 200, json.dumps(merged_snapshot(*registries),
                                   sort_keys=True).encode()
        return (200, render_merged(*registries).encode(),
                "text/plain; version=0.0.4; charset=utf-8")

    def _handle_trace(self, path: str):
        """``GET /trace``: the span ring as Chrome ``trace_event`` JSON."""
        query = parse_qs(path.partition("?")[2])
        last = None
        raw = query.get("last", [None])[-1]
        if raw is not None:
            try:
                last = int(raw)
            except ValueError:
                return protocol.error_response(
                    ModelError(f"malformed last={raw!r} query parameter"))
        trace = {"traceEvents": []} if self._obs is None \
            else self._obs.tracer.chrome_trace(last=last)
        return 200, json.dumps(trace, sort_keys=True).encode()

    async def _handle_solve(self, headers, body: bytes):
        loop = asyncio.get_running_loop()
        obs = self._obs
        trace_id = None
        start = 0.0
        if obs is not None:
            trace_id = headers.get(protocol.TRACE_HEADER)
            start = obs.tracer.clock()
        try:
            if self._faults is not None \
                    and self._faults.draw("worker_sigkill") is not None:
                # The scripted hard crash: the process dies mid-request,
                # the gateway sees the dropped connection, the supervisor
                # (if enabled) respawns us on the same port.
                os.kill(os.getpid(), signal.SIGKILL)
            instance, strategy, config, digest = \
                protocol.decode_solve_request(body)
            # The wire carries the *remaining* deadline budget (monotonic
            # instants do not transfer across processes); rebuild a local
            # absolute deadline for the service.
            deadline = None
            deadline_ms = headers.get(protocol.DEADLINE_HEADER)
            if deadline_ms is not None:
                deadline = time.monotonic() + max(0.0,
                                                  float(deadline_ms)) / 1e3
            # submit() probes the disk tier synchronously on a tier-1 miss;
            # run it in the executor so the event loop keeps accepting.
            # The digest the gateway routed by is reused as the cache key,
            # skipping a canonical-serialization hash per request.
            future = await loop.run_in_executor(
                None, partial(self.service.submit, instance, strategy,
                              config=config, digest=digest,
                              deadline=deadline, trace_id=trace_id))
            report = await asyncio.wrap_future(future)
        except BaseException as exc:  # noqa: BLE001 - mapped to the wire
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            if obs is not None:
                self._record_solve(trace_id, start,
                                   error=type(exc).__name__)
            return protocol.error_response(exc)
        if obs is not None:
            self._record_solve(trace_id, start)
        return 200, protocol.encode_report(report)

    def _record_solve(self, trace_id: Optional[str], start: float,
                      error: Optional[str] = None) -> None:
        """One ``/solve`` finished: histogram observation + span."""
        obs = self._obs
        duration = obs.tracer.clock() - start
        obs.latency_histogram(
            "repro_worker_request_seconds",
            "Wall time of one worker /solve request.").observe(duration)
        if trace_id is None:
            return
        annotations = {} if error is None else {"error": error}
        obs.tracer.record_complete("worker.solve", trace_id=trace_id,
                                   start=start, duration=duration,
                                   **annotations)

    async def _handle_drain(self, body: bytes):
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
            timeout = payload.get("timeout", 60.0)
        except Exception as exc:  # noqa: BLE001 - malformed peer input
            return protocol.error_response(
                ModelError(f"malformed drain request: {exc}"))
        loop = asyncio.get_running_loop()
        drained = await loop.run_in_executor(
            None, partial(self.service.drain, timeout=timeout))
        return 200, json.dumps({"drained": bool(drained)}).encode()


async def _amain(args: argparse.Namespace) -> None:
    injector = None
    if getattr(args, "fault_plan", None):
        injector = FaultInjector.from_plan(FaultPlan.load(args.fault_plan))
    obs = Observability(service=f"worker-{os.getpid()}") \
        if getattr(args, "obs", False) else None
    worker = WorkerServer(
        host=args.host, port=args.port, store_dir=args.store,
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue, max_workers=args.workers or 0,
        fault_injector=injector, obs=obs)
    await worker.start()
    # The launcher blocks on this exact line to learn the ephemeral port.
    print(f"REPRO_WORKER_READY port={worker.port} pid={os.getpid()}",
          flush=True)
    await worker.serve_until_shutdown()


def main(argv=None) -> int:
    """Entry point of ``python -m repro.cluster.worker``."""
    parser = argparse.ArgumentParser(
        prog="repro.cluster.worker",
        description="one cluster shard: a SolveService behind asyncio HTTP")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral, announced on stdout)")
    parser.add_argument("--store", default=None,
                        help="shared artifact-store directory (tier 2/3)")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--max-queue", type=int, default=10_000)
    parser.add_argument("--workers", type=int, default=0,
                        help="process-pool width per batch (0 = in-process)")
    parser.add_argument("--fault-plan", default=None,
                        help="fault plan: a built-in name (e.g. 'smoke') or "
                             "a JSON file path; chaos testing only")
    parser.add_argument("--obs", action="store_true",
                        help="enable observability: span tracing and live "
                             "latency histograms on /metrics and /trace")
    args = parser.parse_args(argv)
    try:
        asyncio.run(_amain(args))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
