"""`repro.cluster` — the sharded multi-worker solve fabric.

Scales :class:`repro.serve.SolveService` horizontally: N worker processes
(each one shard — a full service with micro-batching, coalescing and the
tiered cache) behind an asyncio HTTP gateway that routes every request by
instance digest, so one instance always lands on one shard and the
worker-local coalescing and tier-1 hit rates survive the scale-out.  All
shards share one content-addressed artifact store, the cluster's
persistent tier: a cold or newly-adopting shard answers any key the
cluster has ever solved from disk, without a solver call.

>>> from repro.cluster import start_cluster        # doctest: +SKIP
>>> from repro import instances                    # doctest: +SKIP
>>> with start_cluster(n_workers=2) as cluster:    # doctest: +SKIP
...     report = cluster.solve(instances.pigou())
...     stats = cluster.merged_stats()             # exact partition

The pieces:

* :class:`WorkerServer` (:mod:`repro.cluster.worker`) — one shard:
  a ``SolveService`` behind ``/solve``, ``/stats``, ``/health``,
  ``/drain``;
* :class:`ClusterGateway` (:mod:`repro.cluster.gateway`) — rendezvous
  routing, per-worker in-flight bounds, overload backoff, failover;
* :func:`start_cluster` / :class:`ClusterHandle`
  (:mod:`repro.cluster.launcher`) — process lifecycle and the synchronous
  facade;
* :func:`run_cluster_bench` (:mod:`repro.cluster.bench`) — the
  ``cluster_scaling`` benchmark behind ``repro serve bench --cluster``;
* :mod:`repro.cluster.protocol` / :mod:`repro.cluster.hashing` — the JSON
  wire format and the deterministic shard mapping.
"""

from repro.cluster.bench import (
    ClusterBenchPass,
    ClusterBenchResult,
    run_cluster_bench,
)
from repro.cluster.gateway import ClusterGateway, WorkerEndpoint
from repro.cluster.hashing import rank_nodes, rendezvous_weight, route, shard_map
from repro.cluster.launcher import (
    ClusterHandle,
    EventLoopThread,
    WorkerProcess,
    start_cluster,
)
from repro.cluster.worker import WorkerServer, build_worker_service

__all__ = [
    "WorkerServer",
    "build_worker_service",
    "ClusterGateway",
    "WorkerEndpoint",
    "ClusterHandle",
    "EventLoopThread",
    "WorkerProcess",
    "start_cluster",
    "ClusterBenchPass",
    "ClusterBenchResult",
    "run_cluster_bench",
    "rendezvous_weight",
    "rank_nodes",
    "route",
    "shard_map",
]
