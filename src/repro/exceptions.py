"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  More specific subclasses communicate *where* the
failure happened (model construction, solver convergence, strategy validation)
without requiring the caller to parse messages.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "LatencyDomainError",
    "InfeasibleFlowError",
    "ConvergenceError",
    "StrategyError",
    "InstanceError",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceClosedError",
    "ServiceTimeoutError",
    "ClusterError",
    "WorkerUnavailableError",
    "FaultInjectedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ModelError(ReproError):
    """Raised when a network / instance model is structurally invalid.

    Examples: negative demand, a link with a non-increasing latency where a
    strictly increasing one is required, a commodity whose sink is unreachable
    from its source.
    """


class LatencyDomainError(ModelError):
    """Raised when a latency function is evaluated outside of its domain.

    The main producer of this error is :class:`repro.latency.MM1Latency`,
    which is only defined for loads strictly below its capacity.
    """


class InfeasibleFlowError(ModelError):
    """Raised when a flow vector violates feasibility (non-negativity or
    demand conservation) beyond the configured tolerance."""


class ConvergenceError(ReproError):
    """Raised when an iterative solver fails to reach its tolerance within the
    configured iteration budget."""

    def __init__(self, message: str, *, iterations: int | None = None,
                 residual: float | None = None) -> None:
        super().__init__(message)
        #: Number of iterations performed before giving up (if known).
        self.iterations = iterations
        #: Last observed residual / gap (if known).
        self.residual = residual


class StrategyError(ReproError):
    """Raised when a Stackelberg strategy is invalid for its instance.

    Examples: strategy flow exceeding the total demand, negative flow on a
    link, a strategy defined on the wrong number of links/edges.
    """


class InstanceError(ReproError):
    """Raised by instance generators when parameters are out of range."""


class ServiceError(ReproError):
    """Base class for errors raised by the :mod:`repro.serve` layer."""


class ServiceOverloadedError(ServiceError):
    """Raised when the service's bounded request queue is full.

    Backpressure signal: the caller should retry later (or with a larger
    ``max_queue`` / more drain capacity).  Rejected submissions are counted
    in :class:`repro.serve.ServiceStats`.

    Carries the queue depth observed at rejection time so retrying callers
    — the cluster gateway's backoff loop in particular — can log *how*
    overloaded the worker was, and so the condition survives the wire
    round trip (:mod:`repro.cluster.protocol` re-raises it with the same
    depth on the gateway side).
    """

    def __init__(self, message: str, *,
                 queue_depth: int | None = None) -> None:
        super().__init__(message)
        #: Request-queue length observed when the submission was refused
        #: (``None`` when the producer predates the wire format).
        self.queue_depth = queue_depth


class ServiceClosedError(ServiceError):
    """Raised when submitting to (or set on futures of) a stopped service."""


class ServiceTimeoutError(ServiceError):
    """Raised when a request's end-to-end deadline expired before it solved.

    Deadlines propagate gateway -> wire header -> worker -> dispatcher:
    a queued request whose deadline has passed is failed fast with this
    error instead of occupying a solver batch, and the cluster gateway's
    retry/backoff loop never sleeps past the caller's deadline.  Like
    :class:`ServiceOverloadedError` the condition survives the wire round
    trip (:mod:`repro.cluster.protocol` maps it onto HTTP 504 and re-raises
    it on the caller's side).

    ``elapsed`` (seconds past the deadline when the expiry was noticed, if
    known) is diagnostic only.
    """

    def __init__(self, message: str, *,
                 elapsed: float | None = None) -> None:
        super().__init__(message)
        #: Seconds past the deadline when the request was failed (if known).
        self.elapsed = elapsed


class FaultInjectedError(ServiceError):
    """An error deliberately raised by the fault-injection layer.

    Produced only when a :class:`repro.faults.FaultInjector` is active
    (chaos runs, resilience tests) — never in normal operation.  It is a
    :class:`ServiceError` so every chaos-run failure still resolves to a
    *typed* service exception, which is exactly the degradation contract
    the chaos invariants assert.
    """


class ClusterError(ServiceError):
    """Base class for errors raised by the :mod:`repro.cluster` fabric."""


class WorkerUnavailableError(ClusterError):
    """Raised when no alive worker can serve a request.

    Produced by the gateway when every endpoint a key rendezvous-routes to
    is dead, or when a request exhausted its retry budget against
    persistently overloaded shards.
    """
