#!/usr/bin/env python3
"""Structural validation of the MkDocs site, without installing MkDocs.

CI builds the real site with ``mkdocs build --strict``; this script is the
MkDocs-free subset of that check the test suite runs in every lane (its
only third-party need is PyYAML, to parse ``mkdocs.yml``):

* every page in the ``mkdocs.yml`` nav exists under ``docs/``;
* every Markdown file under ``docs/`` is reachable from the nav;
* every relative Markdown link between docs pages resolves;
* every ``::: module`` (mkdocstrings) directive names an importable module;
* every ``src/...py`` path referenced by the notation glossary exists;
* every example script has a module docstring and appears in the gallery.

Exits non-zero (listing every problem) on the first broken invariant.

Run with::

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path
from typing import List

import yaml

ROOT = Path(__file__).resolve().parents[1]
DOCS = ROOT / "docs"
MKDOCS_YML = ROOT / "mkdocs.yml"

#: Matches [text](target) Markdown links.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Matches mkdocstrings ``::: dotted.module`` directives.
_AUTODOC = re.compile(r"^:::\s+([\w.]+)\s*$", re.MULTILINE)
#: Matches src/...py file references (the notation glossary's cross-links).
_SRC_REF = re.compile(r"`(src/[\w/]+\.py)(?::\d+)?`")


def _nav_pages(node) -> List[str]:
    """Flatten the nav tree into the list of page paths."""
    pages: List[str] = []
    if isinstance(node, str):
        pages.append(node)
    elif isinstance(node, list):
        for item in node:
            pages.extend(_nav_pages(item))
    elif isinstance(node, dict):
        for value in node.values():
            pages.extend(_nav_pages(value))
    return pages


def check_docs() -> List[str]:
    """Run every structural check; returns the list of problems found."""
    problems: List[str] = []
    if not MKDOCS_YML.exists():
        return [f"missing {MKDOCS_YML}"]
    # mkdocs.yml uses python-specific tags only in `theme`; a naive YAML
    # load is enough for nav + docs_dir.
    config = yaml.safe_load(MKDOCS_YML.read_text(encoding="utf-8"))
    nav = _nav_pages(config.get("nav", []))
    if not nav:
        problems.append("mkdocs.yml has an empty nav")

    # 1. Every nav page exists.
    for page in nav:
        if not (DOCS / page).exists():
            problems.append(f"nav page {page!r} is missing under docs/")

    # 2. Every docs page is reachable from the nav.
    nav_set = set(nav)
    for path in sorted(DOCS.rglob("*.md")):
        rel = path.relative_to(DOCS).as_posix()
        if rel not in nav_set:
            problems.append(f"docs/{rel} is not referenced by the nav")

    # 3. Relative links between pages resolve; 4. autodoc targets import.
    for path in sorted(DOCS.rglob("*.md")):
        rel = path.relative_to(DOCS).as_posix()
        text = path.read_text(encoding="utf-8")
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            target_path = (path.parent / target.split("#")[0]).resolve()
            if not target_path.exists():
                problems.append(f"docs/{rel}: broken link -> {target}")
        for module in _AUTODOC.findall(text):
            try:
                importlib.import_module(module)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                problems.append(
                    f"docs/{rel}: autodoc target {module} failed to "
                    f"import: {exc}")
        for src_ref in _SRC_REF.findall(text):
            if not (ROOT / src_ref).exists():
                problems.append(f"docs/{rel}: referenced file {src_ref} "
                                f"does not exist")

    # 5. Examples are documented: docstring + gallery entry.
    gallery = (DOCS / "examples.md").read_text(encoding="utf-8") \
        if (DOCS / "examples.md").exists() else ""
    for script in sorted((ROOT / "examples").glob("*.py")):
        text = script.read_text(encoding="utf-8")
        if '"""' not in text.split("\n\n")[0] and "'''" not in text:
            problems.append(f"examples/{script.name} has no module docstring")
        if script.name not in gallery:
            problems.append(
                f"examples/{script.name} is missing from docs/examples.md")

    # 6. The docs requirements file CI installs from is present.
    if not (DOCS / "requirements.txt").exists():
        problems.append("docs/requirements.txt is missing")
    return problems


def main() -> int:
    problems = check_docs()
    if problems:
        for problem in problems:
            print(f"docs check: {problem}", file=sys.stderr)
        print(f"docs check: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    pages = len(list(DOCS.rglob("*.md")))
    print(f"docs check OK: {pages} pages, nav consistent, links resolve, "
          f"autodoc targets import")
    return 0


if __name__ == "__main__":
    sys.exit(main())
