#!/usr/bin/env bash
# Smoke test of the repro.api batch execution path.
#
# Runs one solve_many batch (16 random parallel-link instances through the
# process pool, then a cached re-run) and fails loudly if the batch layer
# regresses: wrong report count, missing cache hits, or a strategy that no
# longer induces the optimum.
set -euo pipefail
cd "$(dirname "$0")/.."

PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} python - <<'PY'
import time
from dataclasses import replace

from repro.api import SolveConfig, cache_size, cache_stats, solve_many
from repro.instances import random_linear_parallel


def solver_content(report):
    """The report minus the per-call cache metadata (hit flag, counters)."""
    return replace(report, metadata={k: v for k, v in report.metadata.items()
                                     if k != "cache"})

instances = [random_linear_parallel(6, demand=2.0, seed=s) for s in range(16)]

start = time.perf_counter()
reports = solve_many(instances, "optop", max_workers=4)
cold = time.perf_counter() - start
assert len(reports) == 16, f"expected 16 reports, got {len(reports)}"
assert cache_size() == 16, f"expected 16 cached reports, got {cache_size()}"
assert all(r.attains_optimum for r in reports), "OpTop failed to induce C(O)"
assert all(0.0 <= r.beta <= 1.0 for r in reports), "beta out of range"

start = time.perf_counter()
again = solve_many(instances, "optop", max_workers=4)
warm = time.perf_counter() - start
assert [solver_content(r) for r in again] == \
    [solver_content(r) for r in reports], \
    "cached re-run returned different reports"
assert all(r.metadata["cache"]["hit"] for r in again), "expected cache hits"
assert cache_stats()["hits"] >= len(instances), "hit counter did not advance"
assert warm < cold, (
    f"cached re-run ({warm:.3f}s) not faster than cold run ({cold:.3f}s)")

mean_beta = sum(r.beta for r in reports) / len(reports)
print(f"bench_smoke OK: 16 instances, cold {cold:.3f}s, warm {warm:.4f}s, "
      f"mean beta {mean_beta:.4f}")
PY

# Resume smoke test of the declarative study pipeline: the same smoke study
# run twice against one artifact store must be 100% store hits the second
# time (zero solver calls), which is what `repro study resume` relies on.
STORE_DIR="$(mktemp -d)"
trap 'rm -rf "$STORE_DIR"' EXIT

PYTHONPATH=src${PYTHONPATH:+:$PYTHONPATH} STUDY_STORE="$STORE_DIR" python - <<'PY'
import os

from repro.api import cache_stats, clear_cache
from repro.study import ArtifactStore, get_named_study, run_study

store = ArtifactStore(os.environ["STUDY_STORE"])
spec = get_named_study("smoke")

clear_cache()
cold = run_study(spec, store=store)
assert len(cold) == spec.num_cells, (len(cold), spec.num_cells)
assert cold.store_hits == 0, cold.store_hits
assert cold.solver_calls == spec.num_cells, cold.solver_calls
assert all(r.report.attains_optimum for r in cold), "OpTop failed on a cell"

clear_cache()  # drop the in-process cache: only the artifacts may serve
warm = run_study(spec, store=store)
assert warm.fully_resumed, (
    f"expected zero solver calls on resume, got {warm.solver_calls}")
assert warm.store_hits == spec.num_cells, warm.store_hits
assert cache_stats()["misses"] == 0, cache_stats()
assert [r.report.beta for r in warm] == [r.report.beta for r in cold]

print(f"study_smoke OK: {spec.num_cells} cells, second run "
      f"{warm.store_hits}/{spec.num_cells} artifact hits, "
      f"{warm.solver_calls} solver calls")
PY
