#!/usr/bin/env python
"""The observability overhead gate: "zero-cost when off", measured.

`repro.obs` promises that a service built *without* an
``Observability`` handle pays exactly one ``is None`` check per request
on the hot path.  This script puts a number on that promise and fails CI
when the number drifts:

1. It measures **warm-pass serve throughput** (the all-cache-hit regime,
   where per-request bookkeeping is the largest relative cost) through
   one long-lived :class:`~repro.serve.SolveService` with observability
   disabled and one with it enabled, interleaving trials so machine
   noise hits both equally.  Counters are zeroed between trials with
   :meth:`~repro.serve.cache.TieredCache.reset` — the bench reuses its
   services instead of re-creating them.
2. The disabled-path throughput is compared against the **recorded
   baseline** (``.github/obs-overhead-baseline.json``), scaled by a
   pure-Python calibration loop timed on both machines so the gate
   tracks *code* regressions rather than runner hardware.  A regression
   beyond ``--tolerance`` (default 3%) fails the run.
3. The enabled-vs-disabled delta — the actual cost of tracing +
   histograms when you opt in — is recorded alongside, so the trajectory
   of both numbers lands in ``BENCH_obs.json`` per commit.

Usage::

    python scripts/check_obs_overhead.py [--quick] [--record]
        [--baseline .github/obs-overhead-baseline.json]
        [--output BENCH_obs.json] [--tolerance 3.0]

``--record`` rewrites the baseline from this run's measurements instead
of gating against it (used when a deliberate serving-layer change moves
the needle).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import Observability  # noqa: E402
from repro.serve.bench import run_bench  # noqa: E402
from repro.serve.service import SolveService  # noqa: E402

#: Iterations of the calibration loop (fixed: both the baseline recorder
#: and the gate must time the identical workload).
_CALIBRATION_ROUNDS = 60_000


def calibration_seconds(repeats: int = 3) -> float:
    """Best wall time of a fixed pure-Python hashing + dict workload.

    The warm serve path is dominated by interpreter work (digests, dict
    lookups, futures), so a digest-and-dict loop is a fair proxy for how
    fast this machine runs it.  The baseline stores its own calibration
    time; the ratio of the two rescales the recorded throughput onto the
    current machine.
    """
    best = float("inf")
    for _ in range(repeats):
        table = {}
        start = time.perf_counter()
        payload = b"repro-obs-calibration"
        for i in range(_CALIBRATION_ROUNDS):
            payload = hashlib.sha256(payload).digest()
            table[payload[:8]] = i
            table.get(payload[:8])
        best = min(best, time.perf_counter() - start)
    return best


def measure_warm_throughput(*, num_requests: int, num_distinct: int,
                            trials: int) -> dict:
    """Warm req/s with obs off and on, interleaved over ``trials``.

    Both services live for the whole measurement: the first (untimed)
    pass fills the tier-1 cache, then every timed pass is 100% warm.
    ``cache.reset()`` zeroes the counters between trials so each pass's
    stats stay small and monotone without rebuilding the service.
    """
    services = {
        "disabled": SolveService(max_wait_ms=1.0),
        "enabled": SolveService(max_wait_ms=1.0,
                                obs=Observability(service="overhead-bench")),
    }
    best = {"disabled": 0.0, "enabled": 0.0}
    try:
        for mode, service in services.items():
            service.start()
            run_bench(num_requests=num_requests, num_distinct=num_distinct,
                      passes=1, service=service)  # cache fill, untimed
        for _ in range(max(1, trials)):
            for mode, service in services.items():
                service.cache.reset()
                result = run_bench(num_requests=num_requests,
                                   num_distinct=num_distinct,
                                   passes=1, service=service)
                record = result.passes[0]
                if record.stats.hits != record.requests:
                    raise AssertionError(
                        f"{mode} warm pass was not all-hits: "
                        f"{record.stats.to_dict()}")
                best[mode] = max(best[mode], record.requests_per_second)
    finally:
        for service in services.values():
            service.shutdown(wait=True, timeout=60.0)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline",
                        default=".github/obs-overhead-baseline.json",
                        help="recorded baseline to gate against")
    parser.add_argument("--output", default="BENCH_obs.json",
                        help="where to write this run's record")
    parser.add_argument("--tolerance", type=float, default=3.0,
                        help="allowed disabled-path regression, percent")
    parser.add_argument("--record", action="store_true",
                        help="rewrite the baseline instead of gating")
    parser.add_argument("--quick", action="store_true",
                        help="smaller stream / fewer trials (CI mode)")
    args = parser.parse_args(argv)

    if args.quick:
        num_requests, num_distinct, trials = 1000, 80, 3
    else:
        num_requests, num_distinct, trials = 2000, 100, 4

    calibration = calibration_seconds()
    throughput = measure_warm_throughput(
        num_requests=num_requests, num_distinct=num_distinct, trials=trials)
    disabled = throughput["disabled"]
    enabled = throughput["enabled"]
    enabled_overhead_pct = (100.0 * (disabled - enabled) / disabled
                            if disabled > 0 else 0.0)
    print(f"calibration: {calibration * 1e3:.1f} ms")
    print(f"warm throughput: obs off {disabled:8.0f} req/s, "
          f"obs on {enabled:8.0f} req/s "
          f"(enabled overhead {enabled_overhead_pct:+.1f}%)")

    record = {
        "calibration_seconds": calibration,
        "num_requests": num_requests,
        "num_distinct": num_distinct,
        "trials": trials,
        "disabled_requests_per_second": disabled,
        "enabled_requests_per_second": enabled,
        "enabled_overhead_pct": enabled_overhead_pct,
    }

    baseline_path = Path(args.baseline)
    status = 0
    if args.record:
        baseline_path.write_text(json.dumps({
            "calibration_seconds": calibration,
            "warm_requests_per_second": disabled,
            "num_requests": num_requests,
            "num_distinct": num_distinct,
        }, indent=2) + "\n")
        print(f"recorded baseline -> {baseline_path}")
        record["baseline"] = "recorded"
    elif baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
        # A faster machine runs the calibration loop in less time and
        # should produce proportionally more req/s; scale the recorded
        # throughput onto this machine before applying the tolerance.
        scale = baseline["calibration_seconds"] / calibration
        expected = baseline["warm_requests_per_second"] * scale
        floor = expected * (1.0 - args.tolerance / 100.0)
        delta_pct = 100.0 * (disabled - expected) / expected
        record["baseline"] = {
            "recorded_requests_per_second":
                baseline["warm_requests_per_second"],
            "machine_scale": scale,
            "expected_requests_per_second": expected,
            "delta_pct": delta_pct,
        }
        print(f"baseline: {expected:8.0f} req/s expected on this machine "
              f"(recorded {baseline['warm_requests_per_second']:.0f} "
              f"x scale {scale:.2f}) -> delta {delta_pct:+.1f}%")
        if disabled < floor:
            print(f"FAIL: disabled-path throughput {disabled:.0f} req/s is "
                  f"more than {args.tolerance:.1f}% below the recorded "
                  f"baseline ({floor:.0f} req/s floor)")
            status = 1
        else:
            print(f"OK: disabled path within {args.tolerance:.1f}% "
                  f"of the recorded baseline")
    else:
        print(f"no baseline at {baseline_path}; reporting only "
              f"(run with --record to create one)")
        record["baseline"] = None

    record["passed"] = status == 0
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.output}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
