#!/usr/bin/env python3
"""Regenerate the measured-results section of EXPERIMENTS.md.

Runs every declarative experiment plan (E1-E14, and the ablations with
``--ablations``) through the study pipeline and prints the regenerated
tables together with the paper-vs-measured claim lists.  The output of this
script is pasted into EXPERIMENTS.md (section "Measured results"); re-run it
after any solver change to refresh the numbers::

    PYTHONPATH=src python scripts/generate_experiments_report.py \
        > /tmp/experiments_section.txt

Pass ``--store DIR`` to make the run resumable: every solver cell lands in
the content-addressed artifact store, so a re-run (for example after editing
only the prose) performs zero solver work.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.studies import build_experiment, experiment_ids
from repro.study import ArtifactStore


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", default=None,
                        help="artifact-store directory (resumable runs)")
    parser.add_argument("--ablations", action="store_true",
                        help="include the design ablations A1-A3")
    parser.add_argument("--only", nargs="+", default=None,
                        help="restrict to specific experiment ids")
    args = parser.parse_args(argv)

    store = None if args.store is None else ArtifactStore(args.store)
    known = experiment_ids()
    unknown = sorted(set(args.only or ()) - set(known))
    if unknown:
        parser.error(f"unknown experiment ids: {', '.join(unknown)} "
                     f"(known: {', '.join(known)})")
    ids = args.only or [eid for eid in known
                        if args.ablations or eid.startswith("E")]
    failures = []
    for experiment_id in ids:
        record = build_experiment(experiment_id).run(store=store)
        status = ("all claims hold" if record.all_claims_hold
                  else "CLAIMS FAILED")
        if not record.all_claims_hold:
            failures.append(experiment_id)
        print(f"### {record.experiment_id} — {record.title}")
        print()
        print(f"Status: {status}.")
        print()
        print("```text")
        print(record.to_table())
        print("```")
        print()
    if store is not None:
        stats = store.stats()
        print(f"<!-- artifact store: {stats['hits']} hits, "
              f"{stats['misses']} misses, {stats['writes']} writes -->",
              file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
