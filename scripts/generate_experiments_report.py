#!/usr/bin/env python3
"""Regenerate the measured-results section of EXPERIMENTS.md.

Runs every experiment in :mod:`repro.analysis.experiments` and prints the
regenerated tables together with the paper-vs-measured claim lists.  The
output of this script is pasted into EXPERIMENTS.md (section "Measured
results"); re-run it after any solver change to refresh the numbers::

    python scripts/generate_experiments_report.py > /tmp/experiments_section.txt
"""

from __future__ import annotations

from repro.analysis import experiments


def main() -> None:
    ordered = [
        experiments.experiment_pigou,
        experiments.experiment_figure4_optop,
        experiments.experiment_roughgarden_mop,
        experiments.experiment_optop_random_families,
        experiments.experiment_mop_networks,
        experiments.experiment_linear_optimal,
        experiments.experiment_bound_sweep,
        experiments.experiment_mm1_beta,
        experiments.experiment_monotonicity,
        experiments.experiment_frozen_links,
        experiments.experiment_scaling,
        experiments.experiment_thresholds,
        experiments.experiment_weak_strong,
        experiments.experiment_beta_vs_demand,
    ]
    for experiment in ordered:
        record = experiment()
        status = "all claims hold" if record.all_claims_hold else "CLAIMS FAILED"
        print(f"### {record.experiment_id} — {record.title}")
        print()
        print(f"Status: {status}.")
        print()
        print("```text")
        print(record.to_table())
        print("```")
        print()


if __name__ == "__main__":
    main()
