#!/usr/bin/env python3
"""Regenerate the pinned benchmark-suite baseline for CI.

Runs a built-in suite (``small`` by default) and writes the
``verify_suite`` baseline payload — per-row instance digests and gaps —
to ``.github/suite-gap-baseline.json``.  The CI ``bench-suite`` job
re-runs the suite on every push and fails when an instance digest drifts
or a strategy's gap regresses beyond the suite's ``gap_tolerance``;
regenerating this file is the explicit act of re-pinning after an
intentional change (review the diff like a golden fixture).

Run with::

    PYTHONPATH=src python scripts/make_suite_baseline.py [--suite small]
        [--out .github/suite-gap-baseline.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.bench import baseline_payload, get_suite, run_suite  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", default="small",
                        help="built-in suite to pin (default: small)")
    parser.add_argument("--out",
                        default=str(ROOT / ".github"
                                    / "suite-gap-baseline.json"),
                        help="where to write the baseline JSON")
    args = parser.parse_args(argv)

    report = run_suite(get_suite(args.suite))
    payload = baseline_payload(report)
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n",
                   encoding="utf-8")
    print(f"pinned {len(payload['entries'])} rows of suite "
          f"{report.suite.name!r} v{report.suite.version} to {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
