#!/usr/bin/env python
"""Performance trajectory of the vectorized kernel layer.

Times the hot paths — ``water_fill``, the batched ``water_fill_many``,
``optop`` and ``frank_wolfe`` — with the vectorized kernels against the
scalar ``reference`` backend (or a per-demand loop, for the batched entry
point) on sized instances, plus the serving-layer series: warm-vs-cold
``trace_replay`` through the artifact store and ``cluster_scaling`` (hot-key
throughput of the sharded cluster as workers scale 1 -> 4).  The
measurements (with speedup factors) go to ``BENCH_perf.json``.  CI runs this
per commit and uploads the JSON as an artifact; the run fails (non-zero
exit) when the backends deviate beyond tolerance or the mixed-family
``water_fill`` speedup at ``m >= 1000`` drops below the 10x gate.

Usage::

    python scripts/bench_perf.py [--output BENCH_perf.json] [--quick]

``--quick`` shrinks the instance sizes and repeat counts (used by CI).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.api import SolveConfig  # noqa: E402
from repro.core.optop import optop  # noqa: E402
from repro.equilibrium.frank_wolfe import FrankWolfeOptions, frank_wolfe  # noqa: E402
from repro.equilibrium.parallel import (  # noqa: E402
    parallel_nash,
    water_fill,
    water_fill_many,
)
from repro.instances import (  # noqa: E402
    grid_network,
    layered_network,
    random_linear_parallel,
    random_mixed_parallel,
)

REFERENCE_CONFIG = SolveConfig(kernel_backend="reference")


def best_of(fn, *, repeats: int, budget: float = 5.0) -> float:
    """Best wall time of ``fn`` over up to ``repeats`` runs within ``budget`` s."""
    best = float("inf")
    spent = 0.0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        spent += elapsed
        if spent > budget:
            break
    return best


def bench_water_fill(sizes, *, repeats: int):
    """water_fill on all-linear and mixed-family parallel instances.

    The vectorized timing uses the instance-cached latency batch — exactly
    what the OpTop inner loop and the analysis sweeps pay per solve.
    """
    rows = []
    for family, generator in (("linear", random_linear_parallel),
                              ("mixed", random_mixed_parallel)):
        for m in sizes:
            instance = generator(int(m), demand=0.2 * m, seed=int(m))
            batch = instance.latency_batch()  # built once, reused per solve
            vec = best_of(lambda: water_fill(instance.latencies, instance.demand,
                                             "nash", batch=batch),
                          repeats=repeats)
            ref = best_of(lambda: water_fill(instance.latencies, instance.demand,
                                             "nash", backend="reference"),
                          repeats=max(2, repeats // 2))
            flows_v, _ = water_fill(instance.latencies, instance.demand,
                                    "nash", batch=batch)
            flows_r, _ = water_fill(instance.latencies, instance.demand,
                                    "nash", backend="reference")
            rows.append({
                "benchmark": "water_fill",
                "family": family,
                "size": int(m),
                "vectorized_seconds": vec,
                "reference_seconds": ref,
                "speedup": ref / vec,
                "max_flow_deviation": float(np.max(np.abs(flows_v - flows_r))),
            })
            print(f"water_fill[{family}] m={m}: {vec*1e3:8.3f} ms vs "
                  f"{ref*1e3:8.3f} ms -> {ref/vec:6.1f}x")
    return rows


def bench_water_fill_many(sizes, *, num_demands: int, repeats: int):
    """water_fill_many vs a per-demand water_fill loop (same kernels).

    The shape of a coalesced serving micro-batch or a study demand axis:
    ``num_demands`` demands over one shared link system.  The batched entry
    point amortises the breakpoint grid and runs every Newton iteration
    vectorized across the batch; the loop pays the per-solve dispatch each
    time.  Both sides reuse the instance-cached latency batch.
    """
    rows = []
    for m in sizes:
        instance = random_mixed_parallel(int(m), demand=0.2 * m, seed=int(m))
        batch = instance.latency_batch()
        rng = np.random.default_rng(int(m))
        demands = rng.uniform(0.05 * m, 0.4 * m, size=num_demands)
        many = best_of(lambda: water_fill_many(instance.latencies, demands,
                                               "nash", batch=batch),
                       repeats=repeats)
        loop = best_of(lambda: [water_fill(instance.latencies, float(d),
                                           "nash", batch=batch)
                                for d in demands],
                       repeats=max(2, repeats // 2))
        flows_b, _ = water_fill_many(instance.latencies, demands, "nash",
                                     batch=batch)
        flows_l = np.stack([water_fill(instance.latencies, float(d), "nash",
                                       batch=batch)[0] for d in demands])
        rows.append({
            "benchmark": "water_fill_many",
            "family": "mixed",
            "size": int(m),
            "num_demands": int(num_demands),
            "batched_seconds": many,
            "loop_seconds": loop,
            "speedup": loop / many,
            "max_flow_deviation": float(np.max(np.abs(flows_b - flows_l))),
        })
        print(f"water_fill_many[mixed] m={m} x{num_demands}: "
              f"{many*1e3:8.3f} ms vs {loop*1e3:8.3f} ms -> "
              f"{loop/many:6.1f}x")
    return rows


def bench_optop(sizes, *, repeats: int):
    """Full OpTop runs (optimum + Nash + per-round water filling)."""
    rows = []
    for m in sizes:
        instance = random_linear_parallel(int(m), demand=0.2 * m, seed=7 + int(m))
        vec = best_of(lambda: optop(instance), repeats=repeats)
        ref = best_of(lambda: optop(instance, config=REFERENCE_CONFIG),
                      repeats=max(2, repeats // 2))
        beta_v = optop(instance).beta
        beta_r = optop(instance, config=REFERENCE_CONFIG).beta
        rows.append({
            "benchmark": "optop",
            "family": "linear",
            "size": int(m),
            "vectorized_seconds": vec,
            "reference_seconds": ref,
            "speedup": ref / vec,
            "beta_deviation": abs(beta_v - beta_r),
        })
        print(f"optop m={m}: {vec*1e3:8.3f} ms vs {ref*1e3:8.3f} ms "
              f"-> {ref/vec:6.1f}x")
    return rows


def bench_frank_wolfe(*, repeats: int, iterations: int):
    """Frank–Wolfe on the E5 network families (grids and layered DAGs).

    Both kernels run the identical fixed iteration budget so the comparison
    is per-iteration work (CSR Dijkstra + Newton line search versus heapq
    Dijkstra + golden-section), not convergence luck.
    """
    rows = []
    cases = [
        ("grid 5x5", grid_network(5, 5, demand=3.0, seed=0)),
        ("grid 8x8", grid_network(8, 8, demand=5.0, seed=1)),
        ("layered 4x4", layered_network(4, 4, demand=2.0, seed=2)),
    ]
    options_v = FrankWolfeOptions(tolerance=0.0, max_iterations=iterations)
    options_r = FrankWolfeOptions(tolerance=0.0, max_iterations=iterations,
                                  kernel="reference")
    for name, instance in cases:
        vec = best_of(lambda: frank_wolfe(instance, "nash", options_v),
                      repeats=repeats, budget=30.0)
        ref = best_of(lambda: frank_wolfe(instance, "nash", options_r),
                      repeats=max(1, repeats // 2), budget=30.0)
        rows.append({
            "benchmark": "frank_wolfe",
            "family": name,
            "size": int(instance.network.num_edges),
            "iterations": int(iterations),
            "vectorized_seconds": vec,
            "reference_seconds": ref,
            "speedup": ref / vec,
        })
        print(f"frank_wolfe[{name}] ({instance.network.num_edges} edges, "
              f"{iterations} iters): {vec:7.3f} s vs {ref:7.3f} s "
              f"-> {ref/vec:6.1f}x")
    return rows


def bench_trace_replay(*, num_steps: int, num_links: int, repeats: int):
    """Warm vs cold trace replay through the serving layer.

    Replays a diurnal demand trace on a random parallel instance: the
    *cold* replay pays one solve per distinct level (repeats coalesce); the
    *warm* replay — same trace against the artifact store the cold run
    filled — must perform **zero** solver calls.  The warm/cold ratio is
    the serving-layer win on repeated demand levels, tracked per commit.
    """
    import tempfile

    from repro.api import clear_cache
    from repro.scenarios import DemandTrace, replay_trace
    from repro.study import ArtifactStore

    instance = random_linear_parallel(int(num_links), demand=2.0, seed=42)
    trace = DemandTrace.from_process(
        "diurnal", {"num_steps": int(num_steps), "base": 2.0,
                    "amplitude": 1.0})
    rows = []

    def one_cold():
        clear_cache()
        with tempfile.TemporaryDirectory() as tmp:
            replay_trace(instance, trace, store=ArtifactStore(tmp))

    cold = best_of(one_cold, repeats=repeats, budget=20.0)

    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"
        first = replay_trace(instance, trace, store=ArtifactStore(store_dir))

        def one_warm():
            clear_cache()
            replay_trace(instance, trace, store=ArtifactStore(store_dir))

        warm = best_of(one_warm, repeats=repeats, budget=20.0)
        clear_cache()
        check = replay_trace(instance, trace, store=ArtifactStore(store_dir))
    rows.append({
        "benchmark": "trace_replay",
        "family": "diurnal",
        "size": int(num_steps),
        "num_links": int(num_links),
        "distinct_levels": first.num_distinct_levels,
        "cold_seconds": cold,
        "warm_seconds": warm,
        "speedup": cold / warm if warm > 0 else float("inf"),
        "cold_solver_calls": first.solver_calls,
        "warm_solver_calls": check.solver_calls,
    })
    print(f"trace_replay[diurnal] {num_steps} steps "
          f"({first.num_distinct_levels} distinct): cold {cold*1e3:8.3f} ms "
          f"vs warm {warm*1e3:8.3f} ms -> {cold/warm:6.1f}x "
          f"(warm solver calls: {check.solver_calls})")
    return rows


def bench_cluster_scaling(*, worker_counts, num_requests: int,
                          num_distinct: int, trials: int):
    """Throughput of the sharded cluster as workers scale 1 -> N.

    Drives the hot-key stream (same generator as ``repro serve bench``)
    through real worker processes behind the gateway, in the latency-bound
    serving regime (``max_inflight=2`` per shard, a 20 ms micro-batch fill
    window): each shard's cold throughput is capped by Little's law at
    ``max_inflight / (window + service time)``, so adding shards overlaps
    batch windows — the horizontal win this series records.  Each worker
    count takes the best cold pass of ``trials`` fresh clusters (fresh
    store each, so every trial is genuinely cold); the warm pass must
    perform zero solver calls on any shard and every pass's merged
    buckets must partition its requests exactly.

    The bench runs with observability on, so each pass also records
    p50/p95/p99 request latency (milliseconds) from the delta of the
    gateway's ``repro_gateway_request_seconds`` histogram over that pass.
    """
    from repro.cluster import run_cluster_bench

    def quantiles_ms(record):
        if record.latency_quantiles is None:
            return {}
        return {f"{key}_ms": value * 1e3
                for key, value in record.latency_quantiles.items()}

    rows = []
    baseline = None
    for n_workers in worker_counts:
        best = None
        for _ in range(max(1, trials)):
            result = run_cluster_bench(
                n_workers=int(n_workers), num_requests=int(num_requests),
                num_distinct=int(num_distinct), num_links=4,
                passes=2, max_inflight=2, max_wait_ms=20.0, obs=True)
            if best is None or (result.passes[0].seconds
                                < best.passes[0].seconds):
                best = result
        cold, warm = best.passes
        if baseline is None:
            baseline = cold.seconds
        rows.append({
            "benchmark": "cluster_scaling",
            "family": "hot_keys",
            "size": int(n_workers),
            "num_requests": int(num_requests),
            "num_distinct": int(num_distinct),
            "cold_seconds": cold.seconds,
            "cold_requests_per_second": cold.requests_per_second,
            "warm_seconds": warm.seconds,
            "warm_requests_per_second": warm.requests_per_second,
            "speedup": baseline / cold.seconds,
            "warm_solver_calls": warm.solver_calls,
            "stats_consistent": best.consistent,
            "forwarded": dict(cold.forwarded),
            # Gateway-histogram latency percentiles per pass (ms).
            "cold_latency_ms": quantiles_ms(cold),
            "warm_latency_ms": quantiles_ms(warm),
            # All-zero on a healthy un-faulted run; a nonzero value here
            # means the bench itself tripped the resilience machinery.
            "resilience": dict(best.resilience),
        })
        cold_q = quantiles_ms(cold)
        latency = (f", p50/p95/p99 {cold_q['p50_ms']:.1f}/"
                   f"{cold_q['p95_ms']:.1f}/{cold_q['p99_ms']:.1f} ms"
                   if cold_q else "")
        print(f"cluster_scaling workers={n_workers}: cold "
              f"{cold.requests_per_second:7.1f} req/s "
              f"({cold.seconds:6.3f} s){latency}, warm "
              f"{warm.requests_per_second:7.1f} req/s -> "
              f"{baseline / cold.seconds:5.2f}x vs 1 worker "
              f"(warm solver calls: {warm.solver_calls}, "
              f"consistent: {best.consistent})")
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_perf.json",
                        help="where to write the JSON record")
    parser.add_argument("--quick", action="store_true",
                        help="smaller sizes / fewer repeats (CI mode)")
    args = parser.parse_args(argv)

    if args.quick:
        wf_sizes, optop_sizes, repeats, fw_iters = (100, 1000), (100, 500), 3, 200
        wfm_demands = 32
        trace_steps = 24
        cluster_counts, cluster_requests, cluster_distinct = (1, 2), 200, 160
        cluster_trials = 1
    else:
        wf_sizes, optop_sizes, repeats, fw_iters = ((100, 1000, 5000),
                                                    (100, 1000), 5, 500)
        wfm_demands = 64
        trace_steps = 96
        cluster_counts, cluster_requests, cluster_distinct = (1, 2, 3, 4), 400, 320
        cluster_trials = 2

    # Warm up the kernels once so import/JIT-ish one-time costs stay out of
    # the measurements.
    parallel_nash(random_linear_parallel(50, demand=5.0, seed=0))

    results = []
    results += bench_water_fill(wf_sizes, repeats=repeats)
    results += bench_water_fill_many(wf_sizes, num_demands=wfm_demands,
                                     repeats=repeats)
    results += bench_optop(optop_sizes, repeats=repeats)
    results += bench_frank_wolfe(repeats=repeats, iterations=fw_iters)
    results += bench_trace_replay(num_steps=trace_steps, num_links=16,
                                  repeats=repeats)
    results += bench_cluster_scaling(worker_counts=cluster_counts,
                                     num_requests=cluster_requests,
                                     num_distinct=cluster_distinct,
                                     trials=cluster_trials)

    record = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "quick": bool(args.quick),
        "results": results,
    }
    Path(args.output).write_text(json.dumps(record, indent=2) + "\n")
    print(f"\nwrote {args.output} ({len(results)} measurements)")

    failures = [row for row in results
                if row.get("max_flow_deviation", 0.0) > 1e-9
                or row.get("beta_deviation", 0.0) > 1e-8
                or row.get("warm_solver_calls", 0) > 0
                or not row.get("stats_consistent", True)
                or (row.get("benchmark") == "water_fill"
                    and row["family"] == "mixed" and row["size"] >= 1000
                    and row["speedup"] < 10.0)
                or (row.get("benchmark") == "cluster_scaling"
                    and not args.quick and row["size"] == max(cluster_counts)
                    and row["speedup"] < 2.5)]
    if failures:
        print("WARNING: benchmark below gate or deviation above tolerance:",
              json.dumps(failures, indent=2))
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
