#!/usr/bin/env python3
"""Stackelberg traffic management on a city grid with BPR volume/delay curves.

Run with::

    python examples/city_grid_traffic.py

A traffic authority routes commuters across a one-way street grid whose edges
follow the standard Bureau of Public Roads latency curve.  The script

* computes the selfish (user equilibrium) and the system-optimal assignments,
* runs MOP to find how large a fleet of centrally routed vehicles (e.g.
  navigation-compliant or autonomous vehicles) is needed to push the whole
  network to the optimum, and
* reports the congestion relief obtained.
"""

from __future__ import annotations

from repro import mop, network_nash
from repro.instances import grid_network, random_multicommodity_instance
from repro.utils.tables import format_table


def single_origin_destination() -> None:
    """A 4x4 grid with one origin/destination pair."""
    instance = grid_network(4, 4, demand=3.0, seed=42, latency_family="bpr")
    nash = network_nash(instance)
    result = mop(instance)

    print("=== 4x4 grid, single origin-destination pair (BPR latencies) ===")
    print(f"nodes: {instance.network.num_nodes}, edges: {instance.network.num_edges}")
    print(f"user equilibrium cost        C(N)   = {nash.cost:.6f}")
    print(f"system optimum cost          C(O)   = {result.optimum_cost:.6f}")
    print(f"price of anarchy             C(N)/C(O) = {nash.cost / result.optimum_cost:.6f}")
    print(f"price of optimum             beta_G = {result.beta:.6f}")
    print(f"induced cost with MOP fleet  C(S+T) = {result.induced_cost:.6f}")
    relief = (nash.cost - result.induced_cost) / nash.cost * 100.0
    print(f"congestion relief vs selfish routing: {relief:.2f}%")
    print()


def multiple_commodities() -> None:
    """A bidirected grid with several origin/destination pairs."""
    instance = random_multicommodity_instance(3, 3, num_commodities=3, seed=7,
                                              latency_family="bpr")
    result = mop(instance, compute_nash=True)
    rows = []
    for commodity, free, controlled in zip(instance.commodities, result.free_flows,
                                           result.strategy.controlled_demands):
        rows.append((f"{commodity.source}->{commodity.sink}", commodity.demand,
                     controlled, free))
    print(format_table(
        ("commodity", "demand", "centrally routed", "free (selfish)"),
        rows, title="=== 3-commodity grid: per-commodity controlled flow ==="))
    nash_cost = result.nash.cost if result.nash is not None else float("nan")
    print(f"C(N) = {nash_cost:.6f}   C(O) = {result.optimum_cost:.6f}   "
          f"C(S+T) = {result.induced_cost:.6f}   beta = {result.beta:.6f}")
    print()


def main() -> None:
    single_origin_destination()
    multiple_commodities()


if __name__ == "__main__":
    main()
