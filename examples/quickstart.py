#!/usr/bin/env python3
"""Quickstart: the Price of Optimum on Pigou's example and the paper's Figure 4.

Run with::

    python examples/quickstart.py

The script computes, for two canonical parallel-link instances,

* the Nash equilibrium and the system optimum,
* the price of anarchy,
* the Price of Optimum ``beta`` (minimum Leader share needed to restore the
  optimum) via algorithm OpTop, and
* the induced Stackelberg equilibrium of OpTop's strategy.
"""

from __future__ import annotations

from repro import (
    instances,
    optop,
    parallel_nash,
    parallel_optimum,
    price_of_anarchy,
)
from repro.utils.tables import format_table


def describe(name: str, instance) -> None:
    """Print the full Stackelberg picture of a parallel-link instance."""
    nash = parallel_nash(instance)
    optimum = parallel_optimum(instance)
    result = optop(instance)

    rows = []
    for i in range(instance.num_links):
        rows.append((
            instance.names[i],
            float(nash.flows[i]),
            float(optimum.flows[i]),
            float(result.strategy.flows[i]),
            float(result.outcome.combined_flows[i]),
        ))
    print(format_table(
        ("link", "nash flow", "optimum flow", "leader flow", "induced flow"),
        rows, title=f"=== {name} ==="))
    print(f"C(N) = {nash.cost:.6f}   C(O) = {optimum.cost:.6f}   "
          f"price of anarchy = {price_of_anarchy(instance):.6f}")
    print(f"Price of Optimum beta = {result.beta:.6f}  "
          f"(Leader controls {result.controlled_flow:.6f} of {instance.demand} flow)")
    print(f"Induced Stackelberg cost C(S+T) = {result.induced_cost:.6f} "
          f"(= optimum: {abs(result.induced_cost - optimum.cost) < 1e-9})")
    print()


def main() -> None:
    describe("Pigou's example (Figures 1-3)", instances.pigou())
    describe("Five-link example (Figures 4-6)", instances.figure_4_example())


if __name__ == "__main__":
    main()
