#!/usr/bin/env python3
"""How the achievable cost falls as the Leader's share alpha grows.

Run with::

    python examples/alpha_sweep.py

On a common-slope linear instance (the Theorem 2.4 family) the script sweeps
the Leader's share alpha from 0 to 1 and compares

* the LLF and SCALE heuristics,
* the provably optimal restricted strategy of Theorem 2.4, and
* the theoretical guarantees ``1/alpha`` and ``4/(3+alpha)``,

against the Price of Optimum ``beta`` computed by OpTop — the point beyond
which the optimal ratio is exactly 1.
"""

from __future__ import annotations

import numpy as np

from repro import optop
from repro.analysis import alpha_sweep
from repro.instances import random_affine_common_slope
from repro.metrics import general_latency_bound, linear_latency_bound
from repro.utils.tables import format_table


def main() -> None:
    instance = random_affine_common_slope(5, demand=2.5, seed=13, slope=1.0)
    result = optop(instance)
    print(f"Instance: 5 links, common slope 1, demand 2.5")
    print(f"C(N) = {result.nash_cost:.6f}, C(O) = {result.optimum_cost:.6f}, "
          f"beta = {result.beta:.6f}\n")

    alphas = np.round(np.linspace(0.05, 1.0, 20), 4)
    rows = alpha_sweep(instance, alphas, strategies=("llf", "scale"),
                       include_optimal_restricted=True)
    table_rows = []
    for row in rows:
        table_rows.append((
            row.alpha,
            row.ratios["optimal"],
            row.ratios["llf"],
            row.ratios["scale"],
            general_latency_bound(row.alpha),
            linear_latency_bound(row.alpha),
            "yes" if row.alpha >= result.beta else "",
        ))
    print(format_table(
        ("alpha", "optimal (Thm 2.4)", "LLF", "SCALE", "1/alpha", "4/(3+alpha)",
         "alpha >= beta"),
        table_rows,
        title="Cost ratio C(S+T)/C(O) versus the Leader's share alpha"))


if __name__ == "__main__":
    main()
