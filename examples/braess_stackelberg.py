#!/usr/bin/env python3
"""Stackelberg routing on Braess-type networks (the paper's Figure 7).

Run with::

    python examples/braess_stackelberg.py

Two 4-node networks are analysed with algorithm MOP:

* the classic Braess paradox graph, where the Leader must control *all* the
  flow to enforce the optimum (beta = 1), and
* the Roughgarden Example 6.5.1 graph of the paper's Figure 7, where despite
  the negative ``1/alpha`` lower bound a Leader controlling roughly half the
  flow induces the optimum exactly.
"""

from __future__ import annotations

from repro import instances, mop, network_nash
from repro.utils.tables import format_table


def describe(name: str, instance) -> None:
    """Print optimum / Nash / MOP strategy edge flows for a network instance."""
    result = mop(instance, compute_nash=True)
    nash = result.nash if result.nash is not None else network_nash(instance)

    rows = []
    for i, edge in enumerate(instance.network.edges):
        rows.append((
            f"{edge.tail}->{edge.head}",
            float(nash.edge_flows[i]),
            float(result.optimum.edge_flows[i]),
            float(result.strategy.edge_flows[i]),
            float(result.outcome.combined_flows[i]) if result.outcome else float("nan"),
        ))
    print(format_table(
        ("edge", "nash flow", "optimum flow", "leader flow", "induced flow"),
        rows, title=f"=== {name} ==="))
    print(f"C(N) = {nash.cost:.6f}   C(O) = {result.optimum_cost:.6f}   "
          f"PoA = {nash.cost / result.optimum_cost:.6f}")
    print(f"Price of Optimum beta_G = {result.beta:.6f}")
    print(f"Induced Stackelberg cost C(S+T) = {result.induced_cost:.6f}")
    print(f"Free (uncontrolled) flow per commodity: {result.free_flows}")
    print()


def main() -> None:
    describe("Classic Braess paradox", instances.braess_paradox())
    describe("Roughgarden Example 6.5.1 graph (Figure 7)",
             instances.roughgarden_example(epsilon=0.0))
    describe("Roughgarden graph, perturbed (epsilon = 0.02)",
             instances.roughgarden_example(epsilon=0.02))


if __name__ == "__main__":
    main()
