#!/usr/bin/env python3
"""The declarative study pipeline: spec in, resumable artifacts out.

Run with::

    PYTHONPATH=src python examples/study_pipeline.py

Declares one study — how the Price of Optimum and the LLF baseline behave
as random linear instances grow — runs it twice against a temporary
artifact store, and shows that the second run is served entirely from
artifacts (zero solver calls).
"""

from __future__ import annotations

import tempfile

from repro import ArtifactStore, GeneratorAxis, StudySpec, run_study
from repro.api import SolveConfig, clear_cache


def main() -> None:
    spec = StudySpec(
        "beta-vs-size",
        [GeneratorAxis("random_linear_parallel",
                       {"demand": 2.0},
                       grid={"num_links": [4, 8, 16]},
                       seeds=range(3))],
        strategies=("optop", "llf"),
        configs=(SolveConfig(alpha=0.5, compute_nash=False),),
        description="Price of Optimum and the LLF ratio vs instance size.")
    print(f"spec {spec.name!r}: {spec.num_cells} cells "
          f"({len(spec.axes)} axis, digest {spec.digest()[:12]}...)\n")

    with tempfile.TemporaryDirectory() as root:
        store = ArtifactStore(root)

        study = run_study(spec, store=store)
        print(study.to_table(("generator", "seed", "strategy", "beta",
                              "cost_ratio", "source")))
        print(f"\nfirst run : {study.summary()}")

        clear_cache()  # drop the in-process cache; only artifacts remain
        resumed = run_study(spec, store=store)
        print(f"second run: {resumed.summary()}")
        assert resumed.fully_resumed, "expected a fully resumed study"

        # Aggregate across seeds: mean beta per instance size.
        print("\nmean Price of Optimum by size:")
        for size in (4, 8, 16):
            betas = [r.report.beta for r in resumed.select(strategy="optop")
                     if r.cell.params_dict["num_links"] == size]
            print(f"  m = {size:2d}: "
                  f"{sum(betas) / len(betas):.4f} (n = {len(betas)})")


if __name__ == "__main__":
    main()
