#!/usr/bin/env python3
"""Elastic and time-varying demand: the `repro.scenarios` subsystem.

Run with::

    PYTHONPATH=src python examples/elastic_demand.py

Two scenarios on the paper's five-link Figure 4 instance:

1. **Elastic demand** — instead of a fixed total rate, a linear
   inverse-demand curve ``D(q) = a - q`` decides how much flow enters: the
   realised rate is the fixed point where the willingness to pay meets the
   Wardrop cost level.  The script sweeps the intercept ``a`` and prints
   the realised rate, the market price, the consumer surplus and the Price
   of Optimum ``beta`` at each — showing the rate (and the surplus) grow
   monotonically with the population's valuation.

2. **A diurnal demand trace** — a quantised sinusoidal day replayed step
   by step through the serving layer.  Repeated demand levels coalesce
   onto single solves, so a 24-step day costs far fewer than 24 solver
   calls; the printed summary shows the warm-start accounting.
"""

from __future__ import annotations

from repro import instances
from repro.scenarios import (
    DemandTrace,
    LinearDemandCurve,
    replay_trace,
    solve_elastic,
    wardrop_level,
)
from repro.utils.tables import format_table


def elastic_sweep(instance) -> None:
    """Sweep the demand-curve intercept and print the elastic equilibria."""
    floor = wardrop_level(instance, 0.0)
    rows = []
    for offset in (0.5, 1.0, 2.0, 4.0):
        curve = LinearDemandCurve(intercept=floor + offset, slope=1.0)
        elastic = solve_elastic(instance, curve)
        rows.append((f"{curve.intercept:.3f}",
                     f"{elastic.realised_rate:.4f}",
                     f"{elastic.price:.4f}",
                     f"{elastic.consumer_surplus:.4f}",
                     f"{elastic.beta:.4f}"))
    print(format_table(
        ("intercept a", "realised rate", "price", "surplus", "beta"), rows,
        title="Elastic demand on Figure 4: D(q) = a - q"))


def diurnal_replay(instance) -> None:
    """Replay a 24-step diurnal day and print the warm-start accounting."""
    trace = DemandTrace.from_process(
        "diurnal", {"num_steps": 24, "base": 2.0, "amplitude": 1.0})
    report = replay_trace(instance, trace)
    print(report.to_table())
    print(report.summary())


def main() -> None:
    instance = instances.figure_4_example()
    elastic_sweep(instance)
    print()
    diurnal_replay(instance)


if __name__ == "__main__":
    main()
