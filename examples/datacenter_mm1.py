#!/usr/bin/env python3
"""Stackelberg scheduling in an M/M/1 server farm (Korilis–Lazar–Orda scenario).

Run with::

    python examples/datacenter_mm1.py

A datacenter operator serves an infinite stream of selfish jobs on a farm of
fast and slow M/M/1 servers.  Left alone, the jobs overload the fast servers.
The operator can pre-route a fraction of the traffic centrally; the script
shows

* how much traffic must be controlled to restore the optimum (the Price of
  Optimum of the farm),
* how beta shrinks as the fast group becomes more appealing or as the farm
  becomes homogeneous (the remark after Corollary 2.2), and
* how the LLF and SCALE heuristics compare when the operator controls less
  than beta.
"""

from __future__ import annotations

from repro import llf, optop, price_of_anarchy, scale
from repro.instances import mm1_server_farm
from repro.utils.tables import format_table


def farm_table() -> None:
    """Price of Optimum across farm configurations."""
    rows = []
    configs = [
        ("2 fast (x2) + 6 slow", dict(num_fast=2, num_slow=6, fast_capacity=4.0,
                                      slow_capacity=2.0)),
        ("2 fast (x5) + 6 slow", dict(num_fast=2, num_slow=6, fast_capacity=10.0,
                                      slow_capacity=2.0)),
        ("2 fast (x10) + 6 slow", dict(num_fast=2, num_slow=6, fast_capacity=20.0,
                                       slow_capacity=2.0)),
        ("8 identical servers", dict(num_fast=0, num_slow=8, slow_capacity=3.0)),
        ("16 identical servers", dict(num_fast=0, num_slow=16, slow_capacity=3.0)),
    ]
    for name, kwargs in configs:
        farm = mm1_server_farm(utilisation=0.6, **kwargs)
        result = optop(farm)
        rows.append((name, farm.num_links, round(farm.demand, 3),
                     price_of_anarchy(farm), result.beta))
    print(format_table(
        ("farm", "servers", "demand", "price of anarchy", "price of optimum beta"),
        rows, title="=== How much traffic must the operator control? ==="))
    print()


def heuristics_below_beta() -> None:
    """LLF vs SCALE when the operator controls less than beta."""
    farm = mm1_server_farm(2, 6, fast_capacity=10.0, slow_capacity=2.0,
                           utilisation=0.6)
    result = optop(farm)
    optimum_cost = result.optimum_cost
    rows = []
    for fraction in (0.25, 0.5, 0.75, 1.0):
        alpha = fraction * result.beta
        llf_cost = llf(farm, alpha).induce(farm).cost
        scale_cost = scale(farm, alpha).induce(farm).cost
        rows.append((f"{fraction:.2f} * beta", alpha,
                     llf_cost / optimum_cost, scale_cost / optimum_cost))
    print(format_table(
        ("operator share", "alpha", "LLF cost / C(O)", "SCALE cost / C(O)"),
        rows,
        title=f"=== Heuristics below beta = {result.beta:.4f} "
              f"(C(N)/C(O) = {result.nash_cost / optimum_cost:.4f}) ==="))
    print()


def main() -> None:
    farm_table()
    heuristics_below_beta()


if __name__ == "__main__":
    main()
