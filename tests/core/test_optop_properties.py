"""Property-based tests for OpTop (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import optop
from repro.latency import ConstantLatency, LinearLatency, MonomialLatency
from repro.network import ParallelLinkInstance


def parallel_instances():
    affine = st.builds(LinearLatency,
                       st.floats(min_value=0.05, max_value=3.0),
                       st.floats(min_value=0.0, max_value=2.0))
    mono = st.builds(MonomialLatency,
                     st.floats(min_value=0.1, max_value=2.0),
                     st.floats(min_value=1.0, max_value=3.0),
                     st.floats(min_value=0.0, max_value=1.0))
    const = st.builds(ConstantLatency, st.floats(min_value=0.2, max_value=2.5))
    return st.builds(
        lambda first, rest, demand: ParallelLinkInstance([first] + rest, demand),
        affine,
        st.lists(st.one_of(affine, mono, const), min_size=1, max_size=5),
        st.floats(min_value=0.05, max_value=4.0))


@settings(max_examples=40, deadline=None)
@given(parallel_instances())
def test_beta_is_a_fraction(instance):
    result = optop(instance)
    assert -1e-9 <= result.beta <= 1.0 + 1e-9


@settings(max_examples=40, deadline=None)
@given(parallel_instances())
def test_strategy_induces_optimum_cost(instance):
    """Corollary 2.2: the OpTop strategy always enforces C(O)."""
    result = optop(instance)
    assert result.induced_cost == pytest.approx(result.optimum_cost,
                                                rel=1e-5, abs=1e-7)


@settings(max_examples=40, deadline=None)
@given(parallel_instances())
def test_strategy_flows_are_subset_of_optimum(instance):
    """The Leader only ever plays optimum loads on (a subset of) the links."""
    result = optop(instance)
    optimum_flows = result.optimum.flows
    for s, o in zip(result.strategy.flows, optimum_flows):
        assert s <= o + 1e-6
        # Each strategy entry is either ~0 or the full optimum load of the link.
        assert s <= 1e-6 or s == pytest.approx(o, rel=1e-5, abs=1e-7)


@settings(max_examples=40, deadline=None)
@given(parallel_instances())
def test_controlled_flow_matches_beta(instance):
    result = optop(instance)
    assert result.controlled_flow == pytest.approx(result.beta * instance.demand,
                                                   rel=1e-6, abs=1e-8)


@settings(max_examples=40, deadline=None)
@given(parallel_instances())
def test_rounds_shrink_the_active_set(instance):
    result = optop(instance)
    previous = None
    for round_ in result.rounds:
        if previous is not None:
            assert len(round_.active_links) < previous
            assert set(round_.active_links) <= set(previous_links)
        previous = len(round_.active_links)
        previous_links = round_.active_links


@settings(max_examples=40, deadline=None)
@given(parallel_instances())
def test_beta_zero_iff_nash_already_optimal(instance):
    """beta = 0 exactly when the anarchy gap is already closed."""
    result = optop(instance)
    gap = result.nash_cost - result.optimum_cost
    if result.beta <= 1e-9:
        assert gap <= 1e-6 * max(1.0, result.optimum_cost)
    if gap > 1e-5 * max(1.0, result.optimum_cost):
        assert result.beta > 1e-9
