"""Tests for algorithm OpTop (Corollary 2.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import optop
from repro.equilibrium import parallel_nash, parallel_optimum
from repro.instances import (
    figure_4_example,
    mm1_server_farm,
    pigou,
    pigou_nonlinear,
    random_linear_parallel,
    random_mixed_parallel,
    random_polynomial_parallel,
)
from repro.latency import LinearLatency
from repro.network import ParallelLinkInstance


class TestPigou:
    def test_beta_is_one_half(self, pigou_instance):
        assert optop(pigou_instance).beta == pytest.approx(0.5, abs=1e-9)

    def test_strategy_matches_figure_2(self, pigou_instance):
        result = optop(pigou_instance)
        assert result.strategy.flows == pytest.approx([0.0, 0.5], abs=1e-9)

    def test_induced_equilibrium_matches_figure_3(self, pigou_instance):
        result = optop(pigou_instance)
        assert result.outcome.follower_flows == pytest.approx([0.5, 0.0], abs=1e-9)
        assert result.induced_cost == pytest.approx(result.optimum_cost, abs=1e-12)

    def test_costs_exposed(self, pigou_instance):
        result = optop(pigou_instance)
        assert result.nash_cost == pytest.approx(1.0)
        assert result.optimum_cost == pytest.approx(0.75)
        assert result.controlled_flow == pytest.approx(0.5)


class TestFigure4:
    def test_beta_matches_paper(self, figure4_instance):
        result = optop(figure4_instance)
        assert result.beta == pytest.approx(29.0 / 120.0, abs=1e-9)

    def test_first_round_freezes_m4_m5(self, figure4_instance):
        result = optop(figure4_instance)
        assert result.rounds[0].frozen_links == (3, 4)

    def test_terminates_in_two_rounds(self, figure4_instance):
        result = optop(figure4_instance)
        assert result.num_rounds == 2
        assert result.rounds[1].frozen_links == ()

    def test_strategy_loads_frozen_links_optimally(self, figure4_instance):
        result = optop(figure4_instance)
        optimum = parallel_optimum(figure4_instance)
        assert result.strategy.flows[3] == pytest.approx(optimum.flows[3], abs=1e-9)
        assert result.strategy.flows[4] == pytest.approx(optimum.flows[4], abs=1e-9)
        assert result.strategy.flows[:3] == pytest.approx([0.0, 0.0, 0.0], abs=1e-12)

    def test_induced_equilibrium_is_optimum(self, figure4_instance):
        result = optop(figure4_instance)
        optimum = parallel_optimum(figure4_instance)
        assert result.outcome.combined_flows == pytest.approx(optimum.flows, abs=1e-7)


class TestDegenerateCases:
    def test_identical_links_need_no_control(self):
        instance = ParallelLinkInstance([LinearLatency(1.0)] * 3, 1.5)
        result = optop(instance)
        assert result.beta == pytest.approx(0.0, abs=1e-9)
        assert result.num_rounds == 1

    def test_nash_equals_optimum_gives_zero_beta(self):
        # Single link: Nash trivially equals the optimum.
        instance = ParallelLinkInstance([LinearLatency(2.0, 0.3)], 1.0)
        result = optop(instance)
        assert result.beta == 0.0
        assert result.induced_cost == pytest.approx(result.optimum_cost)

    def test_nonlinear_pigou(self):
        instance = pigou_nonlinear(4.0)
        result = optop(instance)
        assert 0.0 < result.beta < 1.0
        assert result.induced_cost == pytest.approx(result.optimum_cost, rel=1e-8)


class TestRandomInstances:
    @pytest.mark.parametrize("seed", range(6))
    def test_induces_optimum_on_linear_instances(self, seed):
        instance = random_linear_parallel(6, demand=2.0, seed=seed)
        result = optop(instance)
        assert result.induced_cost == pytest.approx(result.optimum_cost, rel=1e-7)

    @pytest.mark.parametrize("seed", range(4))
    def test_induces_optimum_on_polynomial_instances(self, seed):
        instance = random_polynomial_parallel(5, demand=2.0, seed=seed)
        result = optop(instance)
        assert result.induced_cost == pytest.approx(result.optimum_cost, rel=1e-6)

    @pytest.mark.parametrize("seed", range(4))
    def test_induces_optimum_on_mixed_instances(self, seed):
        instance = random_mixed_parallel(6, demand=2.0, seed=seed)
        result = optop(instance)
        assert result.induced_cost == pytest.approx(result.optimum_cost, rel=1e-6)

    @pytest.mark.parametrize("seed", range(4))
    def test_beta_in_unit_interval(self, seed):
        instance = random_linear_parallel(5, demand=1.0, seed=seed)
        assert 0.0 <= optop(instance).beta <= 1.0

    @pytest.mark.parametrize("seed", range(4))
    def test_frozen_links_were_under_loaded_in_their_round(self, seed):
        """OpTop only freezes links that are under-loaded in the current round."""
        instance = random_linear_parallel(6, demand=2.0, seed=seed)
        result = optop(instance)
        optimum = parallel_optimum(instance)
        for round_ in result.rounds:
            position = {orig: pos for pos, orig in enumerate(round_.active_links)}
            for frozen in round_.frozen_links:
                round_nash_flow = round_.nash_flows[position[frozen]]
                assert round_nash_flow < optimum.flows[frozen] + 1e-6

    def test_mm1_farm(self):
        instance = mm1_server_farm(2, 6, fast_capacity=8.0, slow_capacity=2.0)
        result = optop(instance)
        assert result.induced_cost == pytest.approx(result.optimum_cost, rel=1e-7)
        assert 0.0 <= result.beta < 1.0


class TestMinimality:
    """beta_M is the *minimum* control needed: less control cannot reach C(O)."""

    @pytest.mark.parametrize("seed", [11, 17])
    def test_grid_search_below_beta_fails_to_reach_optimum(self, seed):
        from repro.baselines import brute_force_strategy
        instance = random_linear_parallel(3, demand=1.5, seed=seed)
        result = optop(instance)
        if result.beta < 0.1:
            pytest.skip("beta too small for a meaningful sub-beta grid search")
        brute = brute_force_strategy(instance, result.beta * 0.7, resolution=14)
        assert brute.cost > result.optimum_cost * (1.0 + 1e-7)

    def test_pigou_just_below_half_cannot_reach_optimum(self, pigou_instance):
        from repro.equilibrium import induced_parallel_equilibrium
        # With only 0.45 the best the Leader can do is put it all on link 2.
        outcome = induced_parallel_equilibrium(pigou_instance, [0.0, 0.45])
        assert outcome.cost > parallel_optimum(pigou_instance).cost + 1e-4
