"""Tests for algorithm MOP (Corollary 2.3 / Theorem 2.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import mop, price_of_optimum
from repro.equilibrium import network_nash
from repro.instances import (
    braess_paradox,
    grid_network,
    layered_network,
    random_multicommodity_instance,
    roughgarden_example,
)
from repro.network import parallel_network_as_graph
from repro.instances import pigou, figure_4_example
from repro.core import optop


class TestRoughgardenExample:
    """The paper's Figure 7 walk-through."""

    def test_optimum_flows_match_figure(self, roughgarden_instance):
        result = mop(roughgarden_instance)
        assert result.optimum.edge_flows == pytest.approx(
            [0.75, 0.25, 0.5, 0.25, 0.75], abs=1e-5)

    def test_beta_is_one_half(self, roughgarden_instance):
        result = mop(roughgarden_instance)
        assert result.beta == pytest.approx(0.5, abs=1e-4)

    def test_shortest_path_subgraph_is_middle_path(self, roughgarden_instance):
        result = mop(roughgarden_instance)
        # Edges 0 (s->v), 2 (v->w), 4 (w->t) form the shortest path P0.
        assert result.shortest_edge_sets[0] == frozenset({0, 2, 4})

    def test_leader_controls_outer_paths(self, roughgarden_instance):
        result = mop(roughgarden_instance)
        strategy = result.strategy.edge_flows
        assert strategy[1] == pytest.approx(0.25, abs=1e-4)  # s->w
        assert strategy[3] == pytest.approx(0.25, abs=1e-4)  # v->t
        assert strategy[2] == pytest.approx(0.0, abs=1e-4)   # v->w stays free

    def test_induced_cost_is_optimum(self, roughgarden_instance):
        result = mop(roughgarden_instance)
        assert result.induced_cost == pytest.approx(result.optimum_cost, rel=1e-6)

    def test_free_flow_is_middle_path_flow(self, roughgarden_instance):
        result = mop(roughgarden_instance)
        assert result.free_flows[0] == pytest.approx(0.5, abs=1e-4)

    @pytest.mark.parametrize("epsilon", [0.02, 0.05, 0.1])
    def test_perturbed_instances_follow_beta_formula(self, epsilon):
        result = mop(roughgarden_example(epsilon))
        assert result.beta == pytest.approx(0.5 + 2 * epsilon, abs=1e-3)


class TestBraessParadox:
    def test_leader_must_control_everything(self, braess_instance):
        result = mop(braess_instance)
        assert result.beta == pytest.approx(1.0, abs=1e-9)

    def test_induced_cost_is_optimum(self, braess_instance):
        result = mop(braess_instance)
        assert result.induced_cost == pytest.approx(1.5, rel=1e-6)

    def test_nash_cost_reported_when_requested(self, braess_instance):
        result = mop(braess_instance, compute_nash=True)
        assert result.nash is not None
        assert result.nash.cost == pytest.approx(2.0, rel=1e-6)

    def test_induced_skipped_when_not_requested(self, braess_instance):
        result = mop(braess_instance, compute_induced=False)
        assert result.outcome is None
        with pytest.raises(ValueError):
            _ = result.induced_cost


class TestRandomNetworks:
    @pytest.mark.parametrize("seed", range(3))
    def test_grid_networks_reach_optimum(self, seed):
        instance = grid_network(3, 3, demand=2.0, seed=seed)
        result = mop(instance)
        assert result.induced_cost == pytest.approx(result.optimum_cost, rel=1e-5)
        assert 0.0 <= result.beta <= 1.0

    @pytest.mark.parametrize("seed", range(3))
    def test_layered_networks_reach_optimum(self, seed):
        instance = layered_network(3, 3, demand=2.0, seed=seed)
        result = mop(instance)
        assert result.induced_cost == pytest.approx(result.optimum_cost, rel=1e-5)

    @pytest.mark.parametrize("seed", range(3))
    def test_multicommodity_networks_reach_optimum(self, seed):
        instance = random_multicommodity_instance(3, 3, num_commodities=2, seed=seed)
        result = mop(instance)
        assert result.induced_cost == pytest.approx(result.optimum_cost, rel=1e-4)
        assert len(result.free_flows) == 2
        assert len(result.shortest_edge_sets) == 2

    @pytest.mark.parametrize("seed", range(3))
    def test_beta_never_exceeds_anarchy_free_instances(self, seed):
        """If Nash already equals the optimum, MOP controls (almost) nothing."""
        instance = grid_network(3, 3, demand=2.0, seed=seed)
        result = mop(instance, compute_nash=True)
        if abs(result.nash.cost - result.optimum_cost) < 1e-9:
            assert result.beta < 1e-6

    @pytest.mark.parametrize("seed", range(3))
    def test_strategy_edge_flows_within_optimum(self, seed):
        instance = grid_network(3, 3, demand=1.0, seed=seed)
        result = mop(instance)
        assert np.all(result.strategy.edge_flows
                      <= result.optimum.edge_flows + 1e-7)


class TestConsistencyWithOpTop:
    """On parallel links (embedded as a graph) MOP and OpTop must agree."""

    @pytest.mark.parametrize("builder", [pigou, figure_4_example])
    def test_beta_agrees_with_optop(self, builder):
        parallel_instance = builder()
        network_instance = parallel_network_as_graph(parallel_instance)
        beta_parallel = optop(parallel_instance).beta
        beta_network = mop(network_instance).beta
        assert beta_network == pytest.approx(beta_parallel, abs=1e-5)

    def test_facade_dispatches_by_type(self):
        assert price_of_optimum(pigou()).beta == pytest.approx(0.5, abs=1e-9)
        assert price_of_optimum(roughgarden_example()).beta == pytest.approx(
            0.5, abs=1e-4)

    def test_facade_rejects_other_types(self):
        from repro.exceptions import ModelError
        with pytest.raises(ModelError):
            price_of_optimum(42)
