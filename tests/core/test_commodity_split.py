"""Tests for weak vs strong Stackelberg control splits (Section 4 definitions)."""

from __future__ import annotations

import pytest

from repro.core import commodity_control_split, mop
from repro.instances import (
    braess_paradox,
    random_multicommodity_instance,
    roughgarden_example,
)


class TestSingleCommodity:
    def test_weak_equals_strong_on_single_commodity(self):
        split = commodity_control_split(roughgarden_example())
        assert split.num_commodities == 1
        assert split.weak_beta == pytest.approx(split.strong_beta, abs=1e-9)
        assert split.coordination_gain == pytest.approx(0.0, abs=1e-9)

    def test_braess_requires_full_control(self):
        split = commodity_control_split(braess_paradox())
        assert split.weak_beta == pytest.approx(1.0, abs=1e-9)
        assert split.fractions == (pytest.approx(1.0),)

    def test_reuses_existing_mop_result(self):
        instance = roughgarden_example()
        result = mop(instance, compute_induced=False)
        split = commodity_control_split(instance, result=result)
        assert split.strong_beta == pytest.approx(result.beta)


class TestMultiCommodity:
    @pytest.mark.parametrize("seed", range(3))
    def test_weak_at_least_strong(self, seed):
        instance = random_multicommodity_instance(3, 3, num_commodities=3, seed=seed)
        split = commodity_control_split(instance)
        assert split.weak_beta >= split.strong_beta - 1e-9
        assert split.coordination_gain >= -1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_fractions_within_unit_interval(self, seed):
        instance = random_multicommodity_instance(3, 3, num_commodities=2, seed=seed)
        split = commodity_control_split(instance)
        assert all(0.0 <= f <= 1.0 + 1e-12 for f in split.fractions)
        assert len(split.fractions) == 2

    @pytest.mark.parametrize("seed", range(3))
    def test_strong_beta_is_demand_weighted_average(self, seed):
        instance = random_multicommodity_instance(3, 3, num_commodities=2, seed=seed)
        split = commodity_control_split(instance)
        weighted = sum(c for c in split.controlled) / sum(split.demands)
        assert split.strong_beta == pytest.approx(weighted, abs=1e-9)

    def test_weak_is_max_fraction(self):
        instance = random_multicommodity_instance(3, 3, num_commodities=3, seed=7)
        split = commodity_control_split(instance)
        assert split.weak_beta == pytest.approx(max(split.fractions), abs=1e-12)
