"""Tests for Stackelberg strategy objects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import StrategyError
from repro.core import NetworkStackelbergStrategy, ParallelStackelbergStrategy
from repro.equilibrium import parallel_optimum
from repro.instances import pigou, roughgarden_example


class TestParallelStrategy:
    def test_alpha_and_controlled_flow(self):
        strategy = ParallelStackelbergStrategy(flows=np.array([0.0, 0.5]),
                                               total_demand=1.0)
        assert strategy.controlled_flow == pytest.approx(0.5)
        assert strategy.alpha == pytest.approx(0.5)
        assert strategy.num_links == 2

    def test_negative_flows_rejected(self):
        with pytest.raises(StrategyError):
            ParallelStackelbergStrategy(flows=np.array([-0.1, 0.2]), total_demand=1.0)

    def test_overcommitted_strategy_rejected(self):
        with pytest.raises(StrategyError):
            ParallelStackelbergStrategy(flows=np.array([0.8, 0.5]), total_demand=1.0)

    def test_zero_demand_rejected(self):
        with pytest.raises(StrategyError):
            ParallelStackelbergStrategy(flows=np.array([0.0]), total_demand=0.0)

    def test_induce_on_pigou(self):
        instance = pigou()
        strategy = ParallelStackelbergStrategy(flows=np.array([0.0, 0.5]),
                                               total_demand=1.0)
        outcome = strategy.induce(instance)
        assert outcome.cost == pytest.approx(parallel_optimum(instance).cost)

    def test_induce_rejects_mismatched_instance(self):
        strategy = ParallelStackelbergStrategy(flows=np.array([0.0, 0.5, 0.0]),
                                               total_demand=1.0)
        with pytest.raises(StrategyError):
            strategy.induce(pigou())

    def test_tiny_negative_flows_clipped(self):
        strategy = ParallelStackelbergStrategy(flows=np.array([-1e-15, 0.5]),
                                               total_demand=1.0)
        assert np.all(strategy.flows >= 0.0)


class TestNetworkStrategy:
    def test_alpha_and_remaining_demands(self):
        instance = roughgarden_example()
        strategy = NetworkStackelbergStrategy(
            edge_flows=np.array([0.25, 0.25, 0.0, 0.25, 0.25]),
            controlled_demands=(0.5,), total_demand=1.0)
        assert strategy.alpha == pytest.approx(0.5)
        assert strategy.remaining_demands(instance) == (pytest.approx(0.5),)

    def test_negative_edge_flows_rejected(self):
        with pytest.raises(StrategyError):
            NetworkStackelbergStrategy(edge_flows=np.array([-0.1]),
                                       controlled_demands=(0.1,), total_demand=1.0)

    def test_negative_controlled_demand_rejected(self):
        with pytest.raises(StrategyError):
            NetworkStackelbergStrategy(edge_flows=np.array([0.1]),
                                       controlled_demands=(-0.1,), total_demand=1.0)

    def test_commodity_count_mismatch_rejected(self):
        instance = roughgarden_example()
        strategy = NetworkStackelbergStrategy(
            edge_flows=np.zeros(5), controlled_demands=(0.2, 0.3), total_demand=1.0)
        with pytest.raises(StrategyError):
            strategy.remaining_demands(instance)

    def test_induce_null_strategy_matches_nash(self):
        instance = roughgarden_example()
        strategy = NetworkStackelbergStrategy(
            edge_flows=np.zeros(5), controlled_demands=(0.0,), total_demand=1.0)
        outcome = strategy.induce(instance)
        from repro.equilibrium import network_nash
        assert outcome.cost == pytest.approx(network_nash(instance).cost, rel=1e-5)
