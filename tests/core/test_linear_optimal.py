"""Tests for the Theorem 2.4 optimal restricted strategy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError, StrategyError
from repro.baselines import brute_force_strategy
from repro.core import optimal_restricted_strategy, optop
from repro.equilibrium import parallel_nash, parallel_optimum
from repro.instances import random_affine_common_slope, random_linear_parallel
from repro.latency import LinearLatency, MonomialLatency
from repro.network import ParallelLinkInstance


class TestHypothesisValidation:
    def test_non_linear_latencies_rejected(self):
        instance = ParallelLinkInstance(
            [MonomialLatency(1.0, 2.0), LinearLatency(1.0, 0.0)], 1.0)
        with pytest.raises(ModelError):
            optimal_restricted_strategy(instance, 0.5)

    def test_different_slopes_rejected(self):
        instance = ParallelLinkInstance(
            [LinearLatency(1.0, 0.0), LinearLatency(2.0, 0.0)], 1.0)
        with pytest.raises(ModelError):
            optimal_restricted_strategy(instance, 0.5)

    def test_zero_slope_rejected(self):
        instance = ParallelLinkInstance(
            [LinearLatency(0.0, 1.0), LinearLatency(0.0, 2.0)], 1.0)
        with pytest.raises(ModelError):
            optimal_restricted_strategy(instance, 0.5)

    def test_alpha_out_of_range_rejected(self, common_slope_instance):
        with pytest.raises(StrategyError):
            optimal_restricted_strategy(common_slope_instance, 1.5)
        with pytest.raises(StrategyError):
            optimal_restricted_strategy(common_slope_instance, -0.1)


class TestOptimality:
    def test_prediction_matches_induced_cost(self, common_slope_instance):
        beta = optop(common_slope_instance).beta
        result = optimal_restricted_strategy(common_slope_instance, 0.5 * beta)
        assert result.cost == pytest.approx(result.predicted_cost, rel=1e-5)

    @pytest.mark.parametrize("fraction", [0.3, 0.6, 0.9])
    def test_never_worse_than_brute_force(self, common_slope_instance, fraction):
        beta = optop(common_slope_instance).beta
        alpha = fraction * beta
        restricted = optimal_restricted_strategy(common_slope_instance, alpha)
        brute = brute_force_strategy(common_slope_instance, alpha, resolution=16)
        assert restricted.cost <= brute.cost * (1.0 + 1e-6)

    def test_cost_never_exceeds_nash(self, common_slope_instance):
        nash_cost = parallel_nash(common_slope_instance).cost
        for fraction in (0.0, 0.25, 0.5, 0.75, 1.0):
            result = optimal_restricted_strategy(common_slope_instance, fraction)
            assert result.cost <= nash_cost * (1.0 + 1e-9)

    def test_cost_never_below_optimum(self, common_slope_instance):
        optimum_cost = parallel_optimum(common_slope_instance).cost
        for fraction in (0.1, 0.4, 0.8):
            result = optimal_restricted_strategy(common_slope_instance, fraction)
            assert result.cost >= optimum_cost - 1e-9

    def test_at_beta_recovers_optimum(self, common_slope_instance):
        full = optop(common_slope_instance)
        result = optimal_restricted_strategy(common_slope_instance, full.beta)
        assert result.cost == pytest.approx(full.optimum_cost, rel=1e-6)

    def test_above_beta_recovers_optimum(self, common_slope_instance):
        full = optop(common_slope_instance)
        alpha = min(1.0, full.beta + 0.1)
        result = optimal_restricted_strategy(common_slope_instance, alpha)
        assert result.cost == pytest.approx(full.optimum_cost, rel=1e-6)

    def test_alpha_zero_recovers_nash(self, common_slope_instance):
        nash_cost = parallel_nash(common_slope_instance).cost
        result = optimal_restricted_strategy(common_slope_instance, 0.0)
        assert result.cost == pytest.approx(nash_cost, rel=1e-8)

    def test_cost_monotone_in_alpha(self, common_slope_instance):
        """More control can never hurt the Leader."""
        costs = [optimal_restricted_strategy(common_slope_instance, a).cost
                 for a in np.linspace(0.0, 1.0, 6)]
        for earlier, later in zip(costs, costs[1:]):
            assert later <= earlier * (1.0 + 1e-7)


class TestStrategyStructure:
    def test_strategy_respects_budget(self, common_slope_instance):
        alpha = 0.4
        result = optimal_restricted_strategy(common_slope_instance, alpha)
        assert result.strategy.controlled_flow <= \
            alpha * common_slope_instance.demand + 1e-8

    def test_split_partitions_by_intercept_order(self, common_slope_instance):
        result = optimal_restricted_strategy(common_slope_instance, 0.3)
        assert 1 <= result.split_index <= common_slope_instance.num_links
        # The order must sort intercepts increasingly.
        intercepts = [common_slope_instance.latencies[i].intercept
                      for i in result.order]
        assert intercepts == sorted(intercepts)

    @pytest.mark.parametrize("seed", [1, 5])
    def test_other_instances(self, seed):
        instance = random_affine_common_slope(5, demand=3.0, seed=seed, slope=2.0)
        beta = optop(instance).beta
        alpha = 0.5 * beta
        restricted = optimal_restricted_strategy(instance, alpha)
        brute = brute_force_strategy(instance, alpha, resolution=12)
        assert restricted.cost <= brute.cost * (1.0 + 1e-6)
