"""Tests for the frozen-link theory (Defs 4.3/4.4, Thms 7.2/7.4, Lemma 7.5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    classify_links,
    frozen_link_mask,
    induced_flow_on_frozen_links,
    is_useless_strategy,
)
from repro.equilibrium import induced_parallel_equilibrium, parallel_nash
from repro.instances import figure_4_example, pigou, random_linear_parallel


class TestClassifyLinks:
    def test_pigou_classification(self, pigou_instance):
        classification = classify_links(pigou_instance)
        assert classification.over_loaded == (0,)
        assert classification.under_loaded == (1,)
        assert classification.optimum_loaded == ()

    def test_figure4_classification(self, figure4_instance):
        classification = classify_links(figure4_instance)
        assert set(classification.under_loaded) == {3, 4}
        assert set(classification.over_loaded) == {0, 1, 2}

    def test_identical_links_all_optimum_loaded(self):
        from repro.latency import LinearLatency
        from repro.network import ParallelLinkInstance
        instance = ParallelLinkInstance([LinearLatency(1.0)] * 3, 1.5)
        classification = classify_links(instance)
        assert classification.optimum_loaded == (0, 1, 2)

    def test_precomputed_flows_are_used(self, pigou_instance):
        classification = classify_links(
            pigou_instance,
            nash_flows=np.array([1.0, 0.0]),
            optimum_flows=np.array([0.5, 0.5]))
        assert classification.under_loaded == (1,)


class TestFrozenMask:
    def test_mask_requires_at_least_nash_load(self, pigou_instance):
        nash = parallel_nash(pigou_instance)
        mask = frozen_link_mask(pigou_instance, [1.0, 0.0], nash_flows=nash.flows)
        assert mask[0]
        assert not mask[1]  # zero strategy on a zero-Nash link is not "frozen"

    def test_positive_load_on_empty_link_freezes_it(self, pigou_instance):
        mask = frozen_link_mask(pigou_instance, [0.0, 0.3])
        assert not mask[0]
        assert mask[1]

    def test_below_nash_load_not_frozen(self, pigou_instance):
        mask = frozen_link_mask(pigou_instance, [0.5, 0.0])
        assert not mask.any()


class TestUselessStrategies:
    def test_zero_strategy_is_useless(self, pigou_instance):
        assert is_useless_strategy(pigou_instance, [0.0, 0.0])

    def test_sub_nash_strategy_is_useless(self, pigou_instance):
        assert is_useless_strategy(pigou_instance, [0.7, 0.0])

    def test_loading_empty_link_is_useful(self, pigou_instance):
        assert not is_useless_strategy(pigou_instance, [0.0, 0.1])

    def test_useless_strategy_induces_nash_cost(self, pigou_instance):
        """Theorem 7.2: S + T coincides with N."""
        nash = parallel_nash(pigou_instance)
        outcome = induced_parallel_equilibrium(pigou_instance, [0.6, 0.0])
        assert outcome.cost == pytest.approx(nash.cost, abs=1e-9)
        assert outcome.combined_flows == pytest.approx(nash.flows, abs=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=100),
           st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=5, max_size=5))
    def test_theorem_7_2_on_random_instances(self, seed, scale_factors):
        instance = random_linear_parallel(5, demand=2.0, seed=seed)
        nash = parallel_nash(instance)
        strategy = nash.flows * np.asarray(scale_factors)
        assert is_useless_strategy(instance, strategy, nash_flows=nash.flows)
        outcome = induced_parallel_equilibrium(instance, strategy)
        assert outcome.cost == pytest.approx(nash.cost, rel=1e-7)


class TestFrozenLinksGetNoInducedFlow:
    def test_figure4_frozen_links(self, figure4_instance):
        """Freezing M4 and M5 at their optimum flows keeps them follower-free."""
        from repro.equilibrium import parallel_optimum
        optimum = parallel_optimum(figure4_instance)
        strategy = np.zeros(5)
        strategy[3] = optimum.flows[3]
        strategy[4] = optimum.flows[4]
        leak = induced_flow_on_frozen_links(figure4_instance, strategy)
        assert leak == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=50),
           st.lists(st.booleans(), min_size=5, max_size=5),
           st.floats(min_value=1.0, max_value=1.4))
    def test_theorem_7_4_on_random_instances(self, seed, freeze_mask, factor):
        """Links loaded with at least their Nash flow receive no induced flow."""
        instance = random_linear_parallel(5, demand=2.0, seed=seed)
        nash = parallel_nash(instance)
        strategy = np.where(np.asarray(freeze_mask), nash.flows * factor, 0.0)
        total = float(strategy.sum())
        if total > instance.demand:
            strategy = strategy * (instance.demand / total) * (1.0 - 1e-12)
            # Rescaling may unfreeze some links; recompute the mask inside the
            # helper (it uses the definition, not our intent).
        leak = induced_flow_on_frozen_links(instance, strategy)
        assert leak < 1e-7

    def test_no_frozen_links_returns_zero(self, pigou_instance):
        assert induced_flow_on_frozen_links(pigou_instance, [0.0, 0.0]) == 0.0
