"""Tests for Proposition 7.1 monotonicity and the useful-control threshold."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.core import minimum_useful_control, nash_flow_monotonicity_violation, optop
from repro.instances import (
    figure_4_example,
    pigou,
    random_linear_parallel,
    random_mixed_parallel,
    random_polynomial_parallel,
)
from repro.latency import LinearLatency
from repro.network import ParallelLinkInstance


class TestMonotonicity:
    @pytest.mark.parametrize("seed", range(4))
    def test_no_violation_on_linear_instances(self, seed):
        instance = random_linear_parallel(5, demand=1.0, seed=seed)
        violation = nash_flow_monotonicity_violation(
            instance, np.linspace(0.1, 3.0, 10))
        assert violation < 1e-7

    @pytest.mark.parametrize("seed", range(3))
    def test_no_violation_on_polynomial_instances(self, seed):
        instance = random_polynomial_parallel(5, demand=1.0, seed=seed)
        violation = nash_flow_monotonicity_violation(
            instance, np.linspace(0.1, 2.0, 8))
        assert violation < 1e-6

    @pytest.mark.parametrize("seed", range(3))
    def test_no_violation_on_mixed_instances(self, seed):
        instance = random_mixed_parallel(5, demand=1.0, seed=seed)
        violation = nash_flow_monotonicity_violation(
            instance, np.linspace(0.1, 2.0, 8))
        assert violation < 1e-6

    def test_negative_demand_rejected(self):
        instance = pigou()
        with pytest.raises(ModelError):
            nash_flow_monotonicity_violation(instance, [-1.0, 1.0])

    def test_unsorted_demands_are_sorted_internally(self):
        instance = pigou()
        assert nash_flow_monotonicity_violation(instance, [2.0, 0.5, 1.0]) < 1e-9


class TestMinimumUsefulControl:
    def test_pigou_threshold_is_zero(self):
        threshold = minimum_useful_control(pigou())
        assert threshold.flow == pytest.approx(0.0, abs=1e-12)
        assert threshold.is_improvable

    def test_figure4_threshold_is_nash_load_of_m4(self):
        instance = figure_4_example()
        from repro.equilibrium import parallel_nash
        nash = parallel_nash(instance)
        threshold = minimum_useful_control(instance)
        # Under-loaded links are M4 (positive Nash load) and M5 (zero); the
        # minimum is therefore M5's zero load.
        assert threshold.flow == pytest.approx(min(nash.flows[3], nash.flows[4]),
                                               abs=1e-9)

    def test_already_optimal_instance_not_improvable(self):
        instance = ParallelLinkInstance([LinearLatency(1.0)] * 3, 1.5)
        threshold = minimum_useful_control(instance)
        assert not threshold.is_improvable
        assert threshold.flow == 0.0

    @pytest.mark.parametrize("seed", range(5))
    def test_threshold_never_exceeds_beta(self, seed):
        """A useful strategy needs at least the threshold; the optimum needs beta."""
        instance = random_linear_parallel(5, demand=2.0, seed=seed)
        threshold = minimum_useful_control(instance)
        beta = optop(instance).beta
        assert threshold.fraction <= beta + 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_fraction_consistent_with_flow(self, seed):
        instance = random_linear_parallel(5, demand=2.0, seed=seed)
        threshold = minimum_useful_control(instance)
        assert threshold.fraction == pytest.approx(
            threshold.flow / instance.demand, abs=1e-12)
