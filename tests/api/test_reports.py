"""Satellite: every strategy returns a losslessly JSON-round-tripping report."""

from __future__ import annotations

import json

import pytest

from repro.api import SolveConfig, SolveReport, available_strategies, solve
from repro.instances import braess_paradox, figure_4_example, pigou
from repro.serialization import instance_from_dict

INSTANCES = {
    "pigou": pigou,
    "braess_paradox": braess_paradox,
    "figure_4_example": figure_4_example,
}

#: Small brute-force grid keeps the 5-link figure-4 case fast.
CONFIG = SolveConfig(brute_force_resolution=5)


@pytest.mark.parametrize("strategy", sorted(available_strategies()))
@pytest.mark.parametrize("instance_name", sorted(INSTANCES))
class TestRoundTrip:
    def test_returns_solve_report(self, strategy, instance_name):
        report = solve(INSTANCES[instance_name](), strategy, config=CONFIG)
        assert isinstance(report, SolveReport)
        assert report.strategy == strategy
        assert report.induced_cost >= report.optimum_cost - 1e-9

    def test_json_round_trip_is_lossless(self, strategy, instance_name):
        report = solve(INSTANCES[instance_name](), strategy, config=CONFIG)
        text = report.to_json()
        restored = SolveReport.from_json(text)
        assert restored == report
        # A second round trip is byte-identical (canonical rendering).
        assert restored.to_json() == text

    def test_embedded_instance_reloads(self, strategy, instance_name):
        report = solve(INSTANCES[instance_name](), strategy, config=CONFIG)
        reloaded = instance_from_dict(report.instance)
        fresh = solve(reloaded, strategy, config=CONFIG)
        assert fresh.instance == report.instance
        assert fresh.induced_cost == pytest.approx(report.induced_cost, rel=1e-9)


class TestReportShape:
    def test_dict_is_json_compatible(self, pigou_instance):
        report = solve(pigou_instance, "optop")
        data = report.to_dict()
        assert json.loads(json.dumps(data)) == data

    def test_nash_fields_absent_when_disabled(self, pigou_instance):
        report = solve(pigou_instance, "llf",
                       config=SolveConfig(compute_nash=False))
        assert report.nash_flows is None
        assert report.nash_cost is None
        assert report.price_of_anarchy is None

    def test_beta_only_for_price_of_optimum_strategies(self, pigou_instance):
        cfg = SolveConfig(brute_force_resolution=4)
        for name in ("optop", "mop"):
            assert solve(pigou_instance, name, config=cfg).beta is not None
        for name in ("llf", "scale", "aloof", "brute_force"):
            assert solve(pigou_instance, name, config=cfg).beta is None

    def test_cost_ratio_and_attainment(self, pigou_instance):
        report = solve(pigou_instance, "optop")
        assert report.cost_ratio == pytest.approx(1.0, abs=1e-9)
        assert report.attains_optimum
        aloof = solve(pigou_instance, "aloof")
        assert aloof.cost_ratio == pytest.approx(4.0 / 3.0, abs=1e-9)
        assert not aloof.attains_optimum

    def test_optop_and_mop_agree_across_models(self, figure4_instance):
        """The embedded-graph MOP path reproduces OpTop's beta (Cor. 2.2/2.3)."""
        beta_links = solve(figure4_instance, "optop").beta
        beta_graph = solve(figure4_instance, "mop").beta
        assert beta_graph == pytest.approx(beta_links, abs=1e-5)

    def test_unknown_field_rejected(self, pigou_instance):
        from repro.exceptions import ModelError

        data = solve(pigou_instance, "optop").to_dict()
        data["surprise"] = 1
        with pytest.raises(ModelError):
            SolveReport.from_dict(data)
