"""Tests of the strategy registry and instance-kind dispatch."""

from __future__ import annotations

import pytest

from repro.api import (
    REGISTRY,
    SolveConfig,
    SolveReport,
    StrategyRegistry,
    available_strategies,
    get_strategy,
    register_strategy,
    resolve_instance_kind,
    solve,
)
from repro.exceptions import ModelError, StrategyError
from repro.instances import pigou, braess_paradox
from repro.network.parallel import ParallelLinkInstance
from repro.serialization import instance_from_dict, instance_to_dict

BUILTINS = {"optop", "mop", "llf", "scale", "aloof", "brute_force"}


class TestDefaultRegistry:
    def test_all_six_builtins_registered(self):
        assert BUILTINS <= set(available_strategies())

    def test_get_returns_callables(self):
        for name in BUILTINS:
            assert callable(get_strategy(name))

    def test_unknown_strategy_lists_alternatives(self):
        with pytest.raises(StrategyError, match="optop"):
            get_strategy("definitely_not_registered")

    def test_solve_dispatches_every_builtin(self, pigou_instance):
        config = SolveConfig(brute_force_resolution=4)
        for name in BUILTINS:
            report = solve(pigou_instance, name, config=config)
            assert isinstance(report, SolveReport)
            assert report.strategy == name


class TestCustomRegistration:
    def test_register_and_unregister(self, pigou_instance):
        @register_strategy("stub_for_registry_test")
        def stub(instance, config):
            return solve(instance, "aloof",
                         config=SolveConfig(cache=False))
        try:
            assert "stub_for_registry_test" in REGISTRY
            report = solve(pigou_instance, "stub_for_registry_test",
                           config=SolveConfig(cache=False))
            assert isinstance(report, SolveReport)
        finally:
            REGISTRY.unregister("stub_for_registry_test")
        assert "stub_for_registry_test" not in REGISTRY

    def test_duplicate_name_rejected(self):
        registry = StrategyRegistry()
        registry.register("x", lambda instance, config: None)
        with pytest.raises(StrategyError):
            registry.register("x", lambda instance, config: None)

    def test_non_callable_rejected(self):
        registry = StrategyRegistry()
        with pytest.raises(StrategyError):
            registry.register("x", "not callable")

    def test_fresh_registry_is_isolated(self):
        registry = StrategyRegistry()
        assert len(registry) == 0
        assert "optop" not in registry


class TestInstanceKindDispatch:
    def test_concrete_classes(self, pigou_instance, braess_instance):
        assert resolve_instance_kind(pigou_instance) == "parallel"
        assert resolve_instance_kind(braess_instance) == "network"

    def test_subclass_accepted(self, pigou_instance):
        class LoadedParallel(ParallelLinkInstance):
            pass

        sub = LoadedParallel(pigou_instance.latencies, pigou_instance.demand)
        assert resolve_instance_kind(sub) == "parallel"

    def test_duck_typed_wrapper_accepted(self, pigou_instance):
        class Wrapper:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

        assert resolve_instance_kind(Wrapper(pigou_instance)) == "parallel"
        assert resolve_instance_kind(Wrapper(braess_paradox())) == "network"

    def test_garbage_rejected(self):
        with pytest.raises(ModelError):
            resolve_instance_kind(42)

    def test_duck_typed_wrapper_solves_through_api(self, pigou_instance):
        class Wrapper:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

        report = solve(Wrapper(pigou_instance), "optop",
                       config=SolveConfig(cache=False))
        assert report.beta == pytest.approx(0.5, abs=1e-9)
        assert report.instance == instance_to_dict(pigou_instance)


class TestPriceOfOptimumFacade:
    """The satellite fix: the facade accepts serialization round-trip subclasses."""

    def test_plain_round_trip(self, pigou_instance):
        from repro import price_of_optimum

        loaded = instance_from_dict(instance_to_dict(pigou_instance))
        assert abs(price_of_optimum(loaded).beta - 0.5) < 1e-9

    def test_subclass_round_trip(self, pigou_instance):
        from repro import price_of_optimum

        class LoadedParallel(ParallelLinkInstance):
            """Mimics a loader reconstructing instances as a subclass."""

        loaded = LoadedParallel(pigou_instance.latencies, pigou_instance.demand)
        result = price_of_optimum(loaded)
        assert abs(result.beta - 0.5) < 1e-9

    def test_duck_typed_instance_dispatches(self, pigou_instance):
        from repro import price_of_optimum

        class Wrapper:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

        result = price_of_optimum(Wrapper(pigou_instance))
        assert abs(result.beta - 0.5) < 1e-9

    def test_network_round_trip(self, braess_instance):
        from repro import price_of_optimum

        loaded = instance_from_dict(instance_to_dict(braess_instance))
        assert abs(price_of_optimum(loaded).beta - 1.0) < 1e-9

    def test_garbage_still_rejected(self):
        from repro import price_of_optimum

        with pytest.raises(ModelError):
            price_of_optimum("not an instance")


class TestBatchSolverRegistration:
    def test_builtin_aloof_has_batch_solver(self):
        assert REGISTRY.batch_solver("aloof") is not None

    def test_unattached_strategies_return_none(self):
        assert REGISTRY.batch_solver("optop") is None
        assert REGISTRY.batch_solver("never_registered") is None

    def test_register_batch_requires_base_strategy(self):
        registry = StrategyRegistry()
        with pytest.raises(StrategyError, match="unregistered"):
            registry.register_batch("ghost", lambda instances, config: None)

    def test_register_batch_rejects_duplicates(self):
        registry = StrategyRegistry()
        registry.register("s", lambda instance, config: None)
        registry.register_batch("s", lambda instances, config: None)
        with pytest.raises(StrategyError):
            registry.register_batch("s", lambda instances, config: None)

    def test_register_batch_decorator_form(self):
        registry = StrategyRegistry()
        registry.register("s", lambda instance, config: None)

        @registry.register_batch("s")
        def batched(instances, config):
            return None

        assert registry.batch_solver("s") is batched

    def test_unregister_drops_batch_solver(self):
        registry = StrategyRegistry()
        registry.register("s", lambda instance, config: None)
        registry.register_batch("s", lambda instances, config: None)
        registry.unregister("s")
        registry.register("s", lambda instance, config: None)
        assert registry.batch_solver("s") is None
