"""SolveConfig validation and its threading through core/ and equilibrium/."""

from __future__ import annotations

import pytest

from repro.api import EQUILIBRIUM_BACKENDS, SolveConfig
from repro.core.mop import mop
from repro.core.optop import optop
from repro.equilibrium.network import network_nash, network_optimum
from repro.equilibrium.parallel import parallel_nash, parallel_optimum
from repro.exceptions import ModelError


class TestValidation:
    def test_defaults_are_valid(self):
        config = SolveConfig()
        assert config.backend == "auto"
        assert config.cache is True

    @pytest.mark.parametrize("backend", EQUILIBRIUM_BACKENDS)
    def test_known_backends_accepted(self, backend):
        assert SolveConfig(backend=backend).backend == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ModelError, match="backend"):
            SolveConfig(backend="simplex")

    @pytest.mark.parametrize("kwargs", [
        {"tolerance": 0.0},
        {"water_fill_tol": -1e-9},
        {"max_iterations": 0},
        {"alpha": 1.5},
        {"alpha": -0.1},
        {"brute_force_resolution": 0},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ModelError):
            SolveConfig(**kwargs)

    def test_round_trip(self):
        config = SolveConfig(backend="frank_wolfe", alpha=0.3, tolerance=1e-7)
        assert SolveConfig.from_json(config.to_json()) == config

    def test_unknown_field_rejected(self):
        with pytest.raises(ModelError):
            SolveConfig.from_dict({"warp_speed": True})

    def test_budget_defaults_to_half(self):
        assert SolveConfig().budget() == 0.5
        assert SolveConfig(alpha=0.2).budget() == 0.2
        assert SolveConfig().with_alpha(0.9).budget() == 0.9

    def test_parallel_backend_has_no_network_solver(self):
        with pytest.raises(ModelError):
            SolveConfig(backend="parallel").network_solver()
        assert SolveConfig(backend="pathbased").network_solver() == "path"
        assert SolveConfig(backend="frank_wolfe").network_solver() == "frank-wolfe"


class TestThreading:
    def test_optop_accepts_config(self, pigou_instance):
        config = SolveConfig(underload_atol=1e-7, water_fill_tol=1e-10)
        via_config = optop(pigou_instance, config=config)
        via_kwargs = optop(pigou_instance, atol=1e-7, tol=1e-10)
        assert via_config.beta == pytest.approx(via_kwargs.beta, abs=1e-12)

    def test_explicit_kwargs_beat_config(self, pigou_instance):
        config = SolveConfig(water_fill_tol=1e-6)
        result = optop(pigou_instance, tol=1e-12, config=config)
        assert abs(result.beta - 0.5) < 1e-9

    def test_mop_backend_selection(self, braess_instance):
        # Exact backends recover beta = 1 exactly; Frank-Wolfe only up to its
        # iterative accuracy, but all of them must induce the optimum cost.
        for backend, atol in (("auto", 1e-9), ("pathbased", 1e-9),
                              ("frank_wolfe", 1e-2)):
            result = mop(braess_instance, config=SolveConfig(backend=backend))
            assert result.beta == pytest.approx(1.0, abs=atol)
            assert result.induced_cost == pytest.approx(result.optimum_cost,
                                                        rel=1e-6)

    def test_network_solvers_accept_config(self, braess_instance):
        config = SolveConfig(backend="frank_wolfe", tolerance=1e-8)
        nash = network_nash(braess_instance, config=config)
        optimum = network_optimum(braess_instance, config=config)
        assert nash.cost == pytest.approx(2.0, abs=1e-4)
        assert optimum.cost == pytest.approx(1.5, abs=1e-4)

    def test_parallel_solvers_accept_config(self, pigou_instance):
        config = SolveConfig(water_fill_tol=1e-13)
        assert parallel_nash(pigou_instance, config=config).cost == \
            pytest.approx(1.0, abs=1e-9)
        assert parallel_optimum(pigou_instance, config=config).cost == \
            pytest.approx(0.75, abs=1e-9)
