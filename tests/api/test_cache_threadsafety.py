"""Hammer test: the process-global result cache under concurrent solvers.

The session cache used to be a bare ``OrderedDict`` with unguarded counter
increments — safe only for single-threaded callers.  With the serving layer
submitting from many threads it must hold two properties under contention:

* no exceptions (no torn ``OrderedDict`` mutations), and
* exact accounting: ``hits + misses == cache-enabled solve calls``.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.api import SolveConfig, cache_stats, clear_cache, solve, solve_many
from repro.instances import random_linear_parallel

NUM_THREADS = 8
SOLVES_PER_THREAD = 200


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def test_hammer_mixed_solves_keeps_exact_counters():
    instances = [random_linear_parallel(3, demand=1.0 + 0.2 * i, seed=i)
                 for i in range(12)]
    config = SolveConfig(compute_nash=False)
    strategies = ("optop", "aloof", "scale")
    errors = []
    solved = []

    def worker(tid: int) -> None:
        rng = random.Random(1000 + tid)
        try:
            count = 0
            while count < SOLVES_PER_THREAD:
                if rng.random() < 0.1 and count + 4 <= SOLVES_PER_THREAD:
                    # A small batch (with an in-batch duplicate) in the mix:
                    # solve_many's duplicate path must count under the same
                    # lock as everything else.
                    batch = [rng.choice(instances) for _ in range(3)]
                    batch.append(batch[0])
                    solve_many(batch, rng.choice(strategies), config=config,
                               max_workers=0)
                    count += 4
                else:
                    solve(rng.choice(instances), rng.choice(strategies),
                          config=config)
                    count += 1
            solved.append(count)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(tid,))
               for tid in range(NUM_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors, f"concurrent solves raised: {errors!r}"
    assert sum(solved) == NUM_THREADS * SOLVES_PER_THREAD
    stats = cache_stats()
    assert stats["hits"] + stats["misses"] == NUM_THREADS * SOLVES_PER_THREAD, (
        f"torn counters: {stats} for {NUM_THREADS * SOLVES_PER_THREAD} "
        f"requests")
    # The workload only has len(instances) x len(strategies) distinct keys,
    # far fewer than the request count: hits must dominate (racing first
    # solves can add at most a handful of extra misses per key).
    distinct_keys = len(instances) * len(strategies)
    assert stats["misses"] <= distinct_keys * NUM_THREADS
    assert stats["hits"] > stats["misses"]


def test_concurrent_same_key_solves_stay_consistent():
    """All threads racing on ONE key: counters still sum to requests."""
    instance = random_linear_parallel(3, demand=1.0, seed=0)
    config = SolveConfig(compute_nash=False)
    barrier = threading.Barrier(NUM_THREADS)
    errors = []

    def worker() -> None:
        try:
            barrier.wait(timeout=10)
            for _ in range(50):
                report = solve(instance, "optop", config=config)
                assert report.beta is not None
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(NUM_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert not errors
    stats = cache_stats()
    assert stats["hits"] + stats["misses"] == NUM_THREADS * 50
    # At least one miss (the first solve); racing first solves may produce a
    # few more, but hits must dominate overwhelmingly.
    assert 1 <= stats["misses"] <= NUM_THREADS
