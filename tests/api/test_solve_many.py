"""Batch execution: process-pool fan-out and the instance-digest cache."""

from __future__ import annotations

import pytest

from repro.api import (
    REGISTRY,
    SolveConfig,
    clear_cache,
    cache_size,
    instance_digest,
    register_strategy,
    solve,
    solve_many,
)
from repro.exceptions import StrategyError
from repro.instances import pigou, random_linear_parallel


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestProcessPoolFanOut:
    def test_pool_over_sixteen_instances_matches_sequential(self):
        instances = [random_linear_parallel(5, demand=2.0, seed=s)
                     for s in range(16)]
        pooled = solve_many(instances, "optop", max_workers=4)
        clear_cache()
        sequential = solve_many(instances, "optop", max_workers=0)
        assert len(pooled) == 16
        for a, b in zip(pooled, sequential):
            assert a.beta == pytest.approx(b.beta, abs=1e-12)
            assert a.induced_cost == pytest.approx(b.induced_cost, rel=1e-12)
            assert a.instance == b.instance

    def test_order_is_preserved(self):
        instances = [random_linear_parallel(4, demand=1.0 + s, seed=s)
                     for s in range(6)]
        reports = solve_many(instances, "optop", max_workers=2)
        for inst, report in zip(instances, reports):
            assert report.instance["demand"] == pytest.approx(inst.demand)

    def test_unknown_strategy_fails_before_forking(self):
        with pytest.raises(StrategyError):
            solve_many([pigou()], "nope", max_workers=4)


class TestDigestCache:
    def test_strategy_called_once_per_distinct_instance_hash(self):
        calls = []

        @register_strategy("counting_stub")
        def counting_stub(instance, config):
            calls.append(instance_digest(instance))
            return solve(instance, "aloof",
                         config=SolveConfig(cache=False, compute_nash=False))

        try:
            distinct = [random_linear_parallel(3, demand=1.0, seed=s)
                        for s in range(4)]
            # Three copies of each instance in one batch, plus a repeat batch.
            batch = distinct + distinct + distinct
            config = SolveConfig(cache=True)
            reports = solve_many(batch, "counting_stub", config=config,
                                 max_workers=0)
            assert len(reports) == 12
            assert len(calls) == 4
            assert sorted(set(calls)) == sorted(
                instance_digest(inst) for inst in distinct)

            solve_many(distinct, "counting_stub", config=config, max_workers=0)
            assert len(calls) == 4, "repeat batch must be served from the cache"
        finally:
            REGISTRY.unregister("counting_stub")

    def test_duplicates_get_their_own_hit_report(self):
        inst = random_linear_parallel(3, demand=1.0, seed=0)
        twin = random_linear_parallel(3, demand=1.0, seed=0)
        reports = solve_many([inst, twin], "optop", max_workers=0)
        assert reports[0] is not reports[1]
        assert reports[0].metadata["cache"]["hit"] is False
        assert reports[1].metadata["cache"]["hit"] is True
        assert reports[0].beta == reports[1].beta
        assert reports[0].induced_cost == reports[1].induced_cost

    def test_cache_disabled_calls_per_item(self):
        calls = []

        @register_strategy("counting_stub_nocache")
        def counting_stub(instance, config):
            calls.append(1)
            return solve(instance, "aloof",
                         config=SolveConfig(cache=False, compute_nash=False))

        try:
            inst = random_linear_parallel(3, demand=1.0, seed=1)
            solve_many([inst, inst], "counting_stub_nocache",
                       config=SolveConfig(cache=False), max_workers=0)
            assert len(calls) == 2
            assert cache_size() == 0
        finally:
            REGISTRY.unregister("counting_stub_nocache")

    def test_config_is_part_of_the_key(self):
        inst = random_linear_parallel(3, demand=1.0, seed=2)
        a = solve(inst, "llf", config=SolveConfig(alpha=0.25))
        b = solve(inst, "llf", config=SolveConfig(alpha=0.75))
        assert cache_size() == 2
        assert a.alpha != b.alpha

    def test_reregistered_strategy_does_not_serve_stale_reports(self):
        inst = random_linear_parallel(3, demand=1.0, seed=5)

        @register_strategy("versioned_stub")
        def v1(instance, config):
            return solve(instance, "aloof",
                         config=SolveConfig(cache=False, compute_nash=False))

        try:
            first = solve(inst, "versioned_stub")
            assert first.strategy == "aloof"
        finally:
            REGISTRY.unregister("versioned_stub")

        @register_strategy("versioned_stub")
        def v2(instance, config):
            return solve(instance, "optop",
                         config=SolveConfig(cache=False, compute_nash=False))

        try:
            second = solve(inst, "versioned_stub")
            assert second.strategy == "optop", \
                "re-registered implementation must not be shadowed by the cache"
        finally:
            REGISTRY.unregister("versioned_stub")

    def test_cache_is_bounded(self):
        from repro.api.session import CACHE_MAX_ENTRIES

        assert CACHE_MAX_ENTRIES >= 1
        inst = random_linear_parallel(3, demand=1.0, seed=6)
        solve(inst, "optop")
        assert cache_size() <= CACHE_MAX_ENTRIES

    def test_digest_is_structural(self):
        a = random_linear_parallel(4, demand=2.0, seed=3)
        b = random_linear_parallel(4, demand=2.0, seed=3)
        c = random_linear_parallel(4, demand=2.0, seed=4)
        assert instance_digest(a) == instance_digest(b)
        assert instance_digest(a) != instance_digest(c)


class TestSpawnStartMethodFallback:
    """Runtime-registered strategies must not crash spawn-started pools."""

    def test_runtime_strategy_falls_back_to_sequential(self, monkeypatch):
        import repro.api.session as session

        @register_strategy("runtime_only_stub")
        def runtime_only_stub(instance, config):
            return solve(instance, "aloof",
                         config=SolveConfig(cache=False, compute_nash=False))

        monkeypatch.setattr(session, "_start_method", lambda: "spawn")
        try:
            instances = [random_linear_parallel(3, demand=1.0, seed=s)
                         for s in range(3)]
            with pytest.warns(RuntimeWarning, match="sequential"):
                reports = solve_many(instances, "runtime_only_stub",
                                     max_workers=4)
            assert len(reports) == 3
            assert all(r.strategy == "aloof" for r in reports)
        finally:
            REGISTRY.unregister("runtime_only_stub")

    def test_builtin_strategies_still_use_the_pool_on_spawn(self, monkeypatch):
        import repro.api.session as session

        monkeypatch.setattr(session, "_start_method", lambda: "spawn")
        # Built-ins are re-registered when the worker imports the package,
        # so no fallback (and no warning) is needed.
        assert session._pool_unsafe_reason("optop") is None

    def test_runtime_alias_of_a_package_function_falls_back(self, monkeypatch):
        import repro.api.session as session
        from repro.api.strategies import solve_aloof

        # The *name* decides worker-side resolution: aliasing a package
        # function under a new runtime name is still unsafe on spawn.
        register_strategy("aloof_alias", solve_aloof)
        monkeypatch.setattr(session, "_start_method", lambda: "spawn")
        try:
            assert session._pool_unsafe_reason("aloof_alias") is not None
        finally:
            REGISTRY.unregister("aloof_alias")

    def test_fork_platforms_never_fall_back(self, monkeypatch):
        import repro.api.session as session

        @register_strategy("fork_ok_stub")
        def fork_ok_stub(instance, config):
            return solve(instance, "aloof",
                         config=SolveConfig(cache=False, compute_nash=False))

        monkeypatch.setattr(session, "_start_method", lambda: "fork")
        try:
            assert session._pool_unsafe_reason("fork_ok_stub") is None
        finally:
            REGISTRY.unregister("fork_ok_stub")


class TestBatchPrePass:
    """The whole-batch solver shortcut in sequential solve_many."""

    def _instances(self, n=6):
        base = random_linear_parallel(5, demand=1.0, seed=3)
        return [base.with_demand(0.5 + 0.7 * i) for i in range(n)]

    def test_aloof_batch_matches_per_instance_solve(self):
        instances = self._instances()
        batched = solve_many(instances, "aloof", max_workers=0)
        singles = [solve(inst, "aloof",
                         config=SolveConfig(cache=False))
                   for inst in instances]
        for a, b in zip(batched, singles):
            assert a.induced_cost == pytest.approx(b.induced_cost, abs=1e-9)
            assert a.beta == pytest.approx(b.beta, abs=1e-9)
            for fa, fb in zip(a.induced_flows, b.induced_flows):
                assert fa == pytest.approx(fb, abs=1e-9)

    def test_batch_reports_are_cached(self):
        instances = self._instances()
        first = solve_many(instances, "aloof", max_workers=0)
        assert all(not r.metadata["cache"]["hit"] for r in first)
        second = solve_many(instances, "aloof", max_workers=0)
        assert all(r.metadata["cache"]["hit"] for r in second)

    def test_batch_metadata_records_group_size(self):
        instances = self._instances(4)
        reports = solve_many(instances, "aloof", max_workers=0,
                             config=SolveConfig(cache=False))
        assert all(r.metadata.get("batched") == 4 for r in reports)

    def test_mixed_latency_groups_and_singletons(self):
        shared = random_linear_parallel(4, demand=1.0, seed=8)
        group = [shared.with_demand(d) for d in (0.4, 1.3, 2.2)]
        loner = random_linear_parallel(4, demand=1.5, seed=9)
        reports = solve_many(group + [loner], "aloof", max_workers=0,
                             config=SolveConfig(cache=False))
        assert [r.metadata.get("batched") for r in reports[:3]] == [3, 3, 3]
        assert reports[3].metadata.get("batched") is None
        single = solve(loner, "aloof", config=SolveConfig(cache=False))
        assert reports[3].induced_cost == pytest.approx(single.induced_cost,
                                                        abs=1e-12)

    def test_profiled_batch_skips_the_pre_pass(self):
        # Profiling needs the per-solve PhaseRecorder; the pre-pass must
        # step aside so each report carries its own kernel timings.
        instances = self._instances(3)
        reports = solve_many(instances, "aloof", max_workers=0,
                             config=SolveConfig(cache=False, profile=True))
        assert all("profile" in r.metadata for r in reports)
        assert all(r.metadata.get("batched") is None for r in reports)
