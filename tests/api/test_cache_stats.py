"""Hit/miss accounting of the session result cache."""

from __future__ import annotations

import pytest

from repro.api import SolveConfig, cache_stats, clear_cache, solve, solve_many
from repro.instances import pigou, random_linear_parallel


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestSolveCounters:
    def test_first_solve_is_a_miss_then_hits(self):
        instance = pigou()
        first = solve(instance, "optop")
        assert cache_stats() == {"hits": 0, "misses": 1}
        assert first.metadata["cache"]["hit"] is False

        second = solve(instance, "optop")
        assert cache_stats() == {"hits": 1, "misses": 1}
        assert second.metadata["cache"]["hit"] is True
        assert second.metadata["cache"]["hits"] == 1
        assert second.beta == pytest.approx(first.beta)

    def test_disabled_cache_counts_nothing(self):
        config = SolveConfig(cache=False)
        solve(pigou(), "optop", config=config)
        solve(pigou(), "optop", config=config)
        assert cache_stats() == {"hits": 0, "misses": 0}

    def test_clear_cache_resets_counters(self):
        solve(pigou(), "optop")
        solve(pigou(), "optop")
        assert cache_stats()["hits"] == 1
        clear_cache()
        assert cache_stats() == {"hits": 0, "misses": 0}


class TestSolveManyCounters:
    def test_repeated_batch_hits_for_every_instance(self):
        batch = [random_linear_parallel(5, demand=2.0, seed=s)
                 for s in range(6)]
        first = solve_many(batch, "optop", max_workers=0)
        assert cache_stats() == {"hits": 0, "misses": len(batch)}
        assert all(r.metadata["cache"]["hit"] is False for r in first)

        second = solve_many(batch, "optop", max_workers=0)
        stats = cache_stats()
        assert stats["hits"] == len(batch)
        assert stats["misses"] == len(batch)
        assert all(r.metadata["cache"]["hit"] is True for r in second)
        for a, b in zip(first, second):
            assert a.beta == pytest.approx(b.beta, abs=1e-12)

    def test_duplicates_within_one_batch_count_as_hits(self):
        instance = random_linear_parallel(4, demand=1.5, seed=3)
        reports = solve_many([instance, instance, instance], "optop",
                             max_workers=0)
        stats = cache_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 2
        # Each duplicate receives its own copy of the first occurrence's
        # report, carrying a hit=True cache record like any other hit.
        assert reports[1] is not reports[0]
        assert reports[2] is not reports[0]
        assert reports[0].metadata["cache"]["hit"] is False
        assert reports[1].metadata["cache"]["hit"] is True
        assert reports[2].metadata["cache"]["hit"] is True

    def test_counters_survive_report_serialisation(self):
        report = solve(pigou(), "optop")
        clone = type(report).from_json(report.to_json())
        assert clone.metadata["cache"] == report.metadata["cache"]
