"""Unit and concurrency tests for :class:`repro.cache.LRUCache`."""

from __future__ import annotations

import threading

import pytest

from repro.cache import LRUCache


class TestLRUSemantics:
    def test_get_put_roundtrip_and_counters(self):
        cache = LRUCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_least_recently_used_is_evicted_first(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a"; "b" becomes LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats()["evictions"] == 1

    def test_peek_touches_neither_recency_nor_counters(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.peek("zzz") is None
        cache.put("c", 3)       # "a" is still LRU: peek did not refresh it
        assert "a" not in cache
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_note_folds_external_serves_into_counters(self):
        cache = LRUCache()
        cache.note(hits=3, misses=2)
        stats = cache.stats()
        assert stats["hits"] == 3 and stats["misses"] == 2

    def test_clear_drops_entries_and_counters(self):
        cache = LRUCache()
        cache.put("a", 1)
        cache.get("a")
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0

    def test_max_entries_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(max_entries=0)


class TestLRUThreadSafety:
    def test_counters_are_exact_under_contention(self):
        """hits + misses == lookups across any interleaving of threads."""
        cache = LRUCache(max_entries=64)
        num_threads, lookups_each = 8, 500
        errors = []

        def worker(tid: int) -> None:
            try:
                for i in range(lookups_each):
                    key = (tid * i) % 100
                    if cache.get(key) is None:
                        cache.put(key, key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == num_threads * lookups_each
        assert len(cache) <= 64
