"""Tests for the beta-vs-demand sweep and the E13/E14 experiments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.analysis.sweep import beta_demand_sweep
from repro.analysis.experiments import (
    experiment_beta_vs_demand,
    experiment_weak_strong,
)
from repro.instances import pigou, figure_4_example


class TestBetaDemandSweep:
    def test_points_follow_requested_demands(self):
        points = beta_demand_sweep(pigou(), [0.5, 1.0, 2.0])
        assert [p.demand for p in points] == [0.5, 1.0, 2.0]

    def test_pigou_beta_at_unit_demand(self):
        points = beta_demand_sweep(pigou(), [1.0])
        assert points[0].beta == pytest.approx(0.5, abs=1e-9)
        assert points[0].price_of_anarchy == pytest.approx(4.0 / 3.0)

    def test_low_demand_pigou_has_no_anarchy(self):
        """Below the constant link's latency the fast link alone is optimal."""
        points = beta_demand_sweep(pigou(), [0.25])
        assert points[0].beta == pytest.approx(0.0, abs=1e-9)
        assert points[0].price_of_anarchy == pytest.approx(1.0, abs=1e-9)

    def test_nonpositive_demand_rejected(self):
        with pytest.raises(ModelError):
            beta_demand_sweep(pigou(), [0.0])

    def test_beta_positive_iff_anarchy_gap(self):
        points = beta_demand_sweep(figure_4_example(), np.linspace(0.3, 2.0, 6))
        for point in points:
            gap = point.nash_cost - point.optimum_cost
            if point.beta > 1e-7:
                assert gap > 0.0
            if gap > 1e-5:
                assert point.beta > 0.0


class TestNewExperiments:
    def test_weak_strong_experiment(self):
        record = experiment_weak_strong(seeds=(0, 1))
        assert record.all_claims_hold

    def test_beta_vs_demand_experiment(self):
        record = experiment_beta_vs_demand(num_points=4)
        assert record.all_claims_hold
