"""Golden regression fixtures for the paper experiments E1-E14.

Every experiment table is pinned to a checked-in JSON snapshot under
``tests/fixtures/golden/``.  Future refactors diff against the paper's
numbers (to 1e-9) instead of re-deriving them by hand; a deliberate change
is committed with ``pytest --update-golden`` (see tests/README.md).

What is compared:

* experiment id, title, headers — exactly;
* every table cell — numerics with the 1e-9 comparator, everything else
  exactly.  Columns whose header names a wall-clock quantity (``seconds``)
  are skipped: timings are real measurements, not paper numbers;
* every claim's text and its verdict (``holds``).  The free-form
  ``measured`` strings are presentation, not data, and are not pinned.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.analysis.studies import experiment_ids, run_experiment

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "fixtures" / "golden"

#: Relative/absolute tolerance of the golden comparator.
TOL = 1e-9

#: Header substrings marking non-deterministic (timing) columns.
VOLATILE_HEADERS = ("seconds",)

EXPERIMENTS = [eid for eid in experiment_ids() if eid.startswith("E")]


def _golden_payload(record) -> dict:
    """The pinned subset of an ExperimentRecord."""
    data = record.to_dict()
    return {
        "experiment_id": data["experiment_id"],
        "title": data["title"],
        "headers": data["headers"],
        "rows": data["rows"],
        "claims": [[claim, holds] for claim, _measured, holds
                   in record.claims],
        "all_claims_hold": data["all_claims_hold"],
    }


def _numbers_match(measured: float, pinned: float) -> bool:
    if math.isnan(measured) or math.isnan(pinned):
        return math.isnan(measured) and math.isnan(pinned)
    return abs(measured - pinned) <= TOL + TOL * max(abs(measured),
                                                     abs(pinned))


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def assert_matches_golden(measured: dict, pinned: dict) -> None:
    assert measured["experiment_id"] == pinned["experiment_id"]
    assert measured["title"] == pinned["title"]
    assert measured["headers"] == pinned["headers"], \
        "table schema changed; rerun with --update-golden if intentional"
    assert len(measured["rows"]) == len(pinned["rows"]), (
        f"row count changed: {len(measured['rows'])} vs golden "
        f"{len(pinned['rows'])}")
    headers = measured["headers"]
    for r, (row, gold_row) in enumerate(zip(measured["rows"],
                                            pinned["rows"])):
        assert len(row) == len(gold_row), f"row {r} length changed"
        for c, (cell, gold_cell) in enumerate(zip(row, gold_row)):
            header = str(headers[c]) if c < len(headers) else ""
            if any(tag in header.lower() for tag in VOLATILE_HEADERS):
                continue
            where = f"row {r}, column {headers[c]!r}"
            if _is_number(cell) and _is_number(gold_cell):
                assert _numbers_match(float(cell), float(gold_cell)), (
                    f"{where}: {cell!r} drifted from golden {gold_cell!r} "
                    f"beyond {TOL:g}")
            else:
                assert cell == gold_cell, (
                    f"{where}: {cell!r} != golden {gold_cell!r}")
    assert measured["claims"] == pinned["claims"], \
        "claim set or verdicts changed"
    assert measured["all_claims_hold"] == pinned["all_claims_hold"]


@pytest.mark.parametrize("experiment_id", EXPERIMENTS)
def test_experiment_matches_golden(experiment_id, update_golden):
    record = run_experiment(experiment_id)
    payload = _golden_payload(record)
    path = GOLDEN_DIR / f"{experiment_id}.json"
    if update_golden:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        return
    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        f"pytest --update-golden")
    pinned = json.loads(path.read_text(encoding="utf-8"))
    assert_matches_golden(payload, pinned)
    assert record.all_claims_hold, "a paper claim regressed"


def test_every_pinned_experiment_still_exists():
    """Stale fixtures (for renamed/removed experiments) must be deleted."""
    if not GOLDEN_DIR.exists():
        pytest.skip("golden fixtures not generated yet")
    pinned_ids = {path.stem for path in GOLDEN_DIR.glob("E*.json")}
    assert pinned_ids <= set(EXPERIMENTS), (
        f"golden fixtures without a matching experiment: "
        f"{sorted(pinned_ids - set(EXPERIMENTS))}")
