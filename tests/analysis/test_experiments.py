"""Smoke tests of the per-figure experiments: every paper claim must hold.

These are the same functions the benchmark harness runs; here they are
executed with reduced sizes (where parameters allow) so that the unit-test
suite also certifies the reproduction results end to end.
"""

from __future__ import annotations

import pytest

from repro.analysis import experiments


class TestCanonicalExperiments:
    def test_pigou(self):
        record = experiments.experiment_pigou()
        assert record.all_claims_hold
        assert record.rows  # the table is not empty

    def test_figure4(self):
        record = experiments.experiment_figure4_optop()
        assert record.all_claims_hold
        assert len(record.rows) == 5

    def test_roughgarden(self):
        record = experiments.experiment_roughgarden_mop()
        assert record.all_claims_hold

    def test_roughgarden_perturbed(self):
        record = experiments.experiment_roughgarden_mop(epsilon=0.05)
        assert record.all_claims_hold


class TestFamilyExperiments:
    def test_optop_random_families(self):
        record = experiments.experiment_optop_random_families(
            num_instances=2, num_links=4, minimality_resolution=10)
        assert record.all_claims_hold

    def test_mop_networks(self):
        record = experiments.experiment_mop_networks(seeds=(0,))
        assert record.all_claims_hold

    def test_linear_optimal(self):
        record = experiments.experiment_linear_optimal(num_links=3,
                                                       brute_resolution=12)
        assert record.all_claims_hold

    def test_bound_sweep(self):
        record = experiments.experiment_bound_sweep(num_links=4,
                                                    alphas=(0.25, 0.5, 1.0))
        assert record.all_claims_hold

    def test_mm1_beta(self):
        record = experiments.experiment_mm1_beta()
        assert record.all_claims_hold

    def test_monotonicity(self):
        record = experiments.experiment_monotonicity(num_links=4, num_demands=6)
        assert record.all_claims_hold

    def test_frozen_links(self):
        record = experiments.experiment_frozen_links(num_links=4, trials=3)
        assert record.all_claims_hold

    def test_scaling(self):
        record = experiments.experiment_scaling(optop_sizes=(4, 8), mop_sides=(3,))
        assert record.all_claims_hold

    def test_thresholds(self):
        record = experiments.experiment_thresholds(seeds=(1, 2))
        assert record.all_claims_hold
