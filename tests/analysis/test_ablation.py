"""Tests for the design-choice ablations."""

from __future__ import annotations

import pytest

from repro.analysis.ablation import (
    ablation_free_flow_rule,
    ablation_shortest_path_tolerance,
    ablation_solver_agreement,
)


class TestAblations:
    def test_solver_agreement(self):
        record = ablation_solver_agreement(seeds=(0,))
        assert record.all_claims_hold
        assert len(record.rows) == 2  # nash + optimum for one seed

    def test_free_flow_rule(self):
        record = ablation_free_flow_rule(seeds=(0,))
        assert record.all_claims_hold
        # roughgarden + grid + layered for one seed
        assert len(record.rows) == 3

    def test_shortest_path_tolerance(self):
        record = ablation_shortest_path_tolerance(tolerances=(1e-6, 1e-4),
                                                  seeds=(0,))
        assert record.all_claims_hold
        assert len(record.headers) == 3
