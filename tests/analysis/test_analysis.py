"""Tests for the experiment harness: sweeps, statistics, reporting, scaling."""

from __future__ import annotations

import pytest

from repro.exceptions import ModelError
from repro.analysis import (
    ExperimentRecord,
    alpha_sweep,
    beta_statistics,
    mop_scaling,
    optop_scaling,
)
from repro.instances import pigou, random_affine_common_slope, random_linear_parallel


class TestAlphaSweep:
    def test_rows_cover_requested_alphas(self):
        instance = random_linear_parallel(4, demand=2.0, seed=0)
        rows = alpha_sweep(instance, [0.2, 0.5, 0.8])
        assert [row.alpha for row in rows] == [0.2, 0.5, 0.8]
        assert set(rows[0].ratios) == {"llf", "scale"}

    def test_ratios_at_least_one(self):
        instance = random_linear_parallel(4, demand=2.0, seed=1)
        for row in alpha_sweep(instance, [0.1, 0.9]):
            assert all(ratio >= 1.0 - 1e-9 for ratio in row.ratios.values())

    def test_optimal_restricted_included_on_request(self):
        instance = random_affine_common_slope(3, demand=1.0, seed=2)
        rows = alpha_sweep(instance, [0.5], include_optimal_restricted=True)
        assert "optimal" in rows[0].ratios
        assert rows[0].ratios["optimal"] <= rows[0].ratios["llf"] + 1e-6

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ModelError):
            alpha_sweep(pigou(), [0.5], strategies=("bogus",))

    def test_ratio_non_increasing_in_alpha_for_llf(self):
        instance = random_linear_parallel(4, demand=2.0, seed=3)
        rows = alpha_sweep(instance, [0.2, 0.4, 0.6, 0.8, 1.0])
        llf_ratios = [row.ratios["llf"] for row in rows]
        for earlier, later in zip(llf_ratios, llf_ratios[1:]):
            assert later <= earlier + 1e-6


class TestBetaStatistics:
    def test_summary_fields(self):
        family = [random_linear_parallel(4, demand=1.0, seed=s) for s in range(4)]
        stats, betas = beta_statistics(family)
        assert stats.count == 4
        assert len(betas) == 4
        assert stats.minimum <= stats.mean <= stats.maximum
        assert 0.0 <= stats.minimum and stats.maximum <= 1.0
        assert stats.mean_poa >= 1.0 - 1e-9

    def test_empty_family_rejected(self):
        with pytest.raises(ModelError):
            beta_statistics([])


class TestExperimentRecord:
    def test_add_row_and_claim(self):
        record = ExperimentRecord("EX", "demo", headers=("a", "b"))
        record.add_row(1, 2.0)
        record.add_claim("claim", "measured", True)
        assert record.all_claims_hold
        text = record.to_table()
        assert "EX" in text and "claim" in text

    def test_failed_claim_detected(self):
        record = ExperimentRecord("EX", "demo", headers=("a",))
        record.add_claim("bad claim", "zzz", False)
        assert not record.all_claims_hold
        assert "NO" in record.to_table()


class TestScaling:
    def test_optop_scaling_points(self):
        points = optop_scaling([4, 8])
        assert [p.size for p in points] == [4, 8]
        assert all(p.seconds >= 0.0 for p in points)
        assert all(0.0 <= p.beta <= 1.0 for p in points)

    def test_mop_scaling_points(self):
        points = mop_scaling([3])
        assert points[0].size == 3
        assert points[0].seconds >= 0.0


class TestAlphaSweepOnNetworks:
    """The sweep dispatches on the instance kind (PR 3 generalisation)."""

    def test_network_instance_accepted(self):
        from repro.instances import roughgarden_example

        rows = alpha_sweep(roughgarden_example(), [0.25, 1.0])
        assert [row.alpha for row in rows] == [0.25, 1.0]
        assert all(ratio >= 1.0 - 1e-9
                   for row in rows for ratio in row.ratios.values())
        # With the whole demand under control the baselines reach C(O).
        assert rows[-1].ratios["llf"] == pytest.approx(1.0, abs=1e-6)

    def test_optimal_restricted_rejected_on_networks(self):
        from repro.instances import roughgarden_example

        with pytest.raises(ModelError, match="parallel-link"):
            alpha_sweep(roughgarden_example(), [0.5],
                        include_optimal_restricted=True)

    def test_sweep_resumes_through_a_store(self, tmp_path):
        from repro.api import cache_stats, clear_cache
        from repro.study import ArtifactStore

        instance = random_linear_parallel(4, demand=2.0, seed=5)
        store = ArtifactStore(tmp_path)
        clear_cache()
        first = alpha_sweep(instance, [0.2, 0.8], store=store)
        clear_cache()
        second = alpha_sweep(instance, [0.2, 0.8], store=store)
        assert cache_stats()["misses"] == 0
        assert [row.ratios for row in first] == [row.ratios for row in second]
