"""Tests for simple-path enumeration."""

from __future__ import annotations

import pytest

from repro.exceptions import ModelError
from repro.latency import LinearLatency
from repro.network import Network
from repro.paths import all_simple_paths, path_nodes


def build_braess_like():
    net = Network()
    net.add_edge("s", "v", LinearLatency(1.0))  # 0
    net.add_edge("s", "w", LinearLatency(1.0))  # 1
    net.add_edge("v", "w", LinearLatency(1.0))  # 2
    net.add_edge("v", "t", LinearLatency(1.0))  # 3
    net.add_edge("w", "t", LinearLatency(1.0))  # 4
    return net


class TestAllSimplePaths:
    def test_braess_graph_has_three_paths(self):
        net = build_braess_like()
        paths = all_simple_paths(net, "s", "t")
        assert len(paths) == 3
        assert (0, 3) in paths            # s->v->t
        assert (1, 4) in paths            # s->w->t
        assert (0, 2, 4) in paths         # s->v->w->t

    def test_no_path_returns_empty(self):
        net = Network()
        net.add_edge("s", "a", LinearLatency(1.0))
        net.add_node("t")
        assert all_simple_paths(net, "s", "t") == []

    def test_max_length_cuts_long_paths(self):
        net = build_braess_like()
        paths = all_simple_paths(net, "s", "t", max_length=2)
        assert (0, 2, 4) not in paths
        assert len(paths) == 2

    def test_missing_endpoint_rejected(self):
        net = build_braess_like()
        with pytest.raises(ModelError):
            all_simple_paths(net, "s", "zzz")

    def test_parallel_edges_counted_separately(self):
        net = Network()
        net.add_edge("s", "t", LinearLatency(1.0))
        net.add_edge("s", "t", LinearLatency(2.0))
        assert len(all_simple_paths(net, "s", "t")) == 2

    def test_max_paths_guard(self):
        # A graph with many paths: 6 stages of 2 parallel edges -> 64 paths.
        net = Network()
        nodes = list(range(7))
        for i in range(6):
            net.add_edge(nodes[i], nodes[i + 1], LinearLatency(1.0))
            net.add_edge(nodes[i], nodes[i + 1], LinearLatency(2.0))
        with pytest.raises(ModelError):
            all_simple_paths(net, 0, 6, max_paths=10)


class TestPathNodes:
    def test_node_sequence(self):
        net = build_braess_like()
        assert path_nodes(net, [0, 2, 4]) == ("s", "v", "w", "t")

    def test_empty_path(self):
        net = build_braess_like()
        assert path_nodes(net, []) == ()

    def test_discontinuous_path_rejected(self):
        net = build_braess_like()
        with pytest.raises(ModelError):
            path_nodes(net, [0, 4])  # s->v then w->t does not connect
