"""Tests for flow decomposition and cycle removal."""

from __future__ import annotations

import numpy as np
import pytest

from repro.latency import LinearLatency
from repro.network import Network
from repro.paths import decompose_flow, remove_flow_cycles


def build_braess_like():
    net = Network()
    net.add_edge("s", "v", LinearLatency(1.0))  # 0
    net.add_edge("s", "w", LinearLatency(1.0))  # 1
    net.add_edge("v", "w", LinearLatency(1.0))  # 2
    net.add_edge("v", "t", LinearLatency(1.0))  # 3
    net.add_edge("w", "t", LinearLatency(1.0))  # 4
    return net


class TestRemoveFlowCycles:
    def test_acyclic_flow_unchanged(self):
        net = build_braess_like()
        flows = np.array([0.5, 0.5, 0.0, 0.5, 0.5])
        cleaned = remove_flow_cycles(net, flows)
        assert np.allclose(cleaned, flows)

    def test_two_cycle_cancelled(self):
        net = Network()
        net.add_edge("a", "b", LinearLatency(1.0))  # 0
        net.add_edge("b", "a", LinearLatency(1.0))  # 1
        net.add_edge("s", "a", LinearLatency(1.0))  # 2
        net.add_edge("b", "t", LinearLatency(1.0))  # 3
        flows = np.array([1.0, 0.4, 0.6, 0.6])
        cleaned = remove_flow_cycles(net, flows)
        # The a->b->a cycle of size 0.4 must be cancelled.
        assert cleaned[1] == pytest.approx(0.0, abs=1e-12)
        assert cleaned[0] == pytest.approx(0.6, abs=1e-12)

    def test_divergence_preserved(self):
        net = Network()
        net.add_edge("a", "b", LinearLatency(1.0))
        net.add_edge("b", "c", LinearLatency(1.0))
        net.add_edge("c", "a", LinearLatency(1.0))
        net.add_edge("s", "a", LinearLatency(1.0))
        net.add_edge("c", "t", LinearLatency(1.0))
        flows = np.array([0.8, 0.8, 0.3, 0.5, 0.5])
        cleaned = remove_flow_cycles(net, flows)
        # Node divergences must be identical before and after.
        for node in net.nodes:
            before = sum(flows[i] for i in net.out_edges(node)) \
                - sum(flows[i] for i in net.in_edges(node))
            after = sum(cleaned[i] for i in net.out_edges(node)) \
                - sum(cleaned[i] for i in net.in_edges(node))
            assert after == pytest.approx(before, abs=1e-9)


class TestDecomposeFlow:
    def test_single_path_flow(self):
        net = build_braess_like()
        flows = np.array([1.0, 0.0, 1.0, 0.0, 1.0])
        decomposition = decompose_flow(net, flows, "s", "t")
        assert len(decomposition) == 1
        path, value = decomposition[0]
        assert path == (0, 2, 4)
        assert value == pytest.approx(1.0)

    def test_multi_path_flow_sums_to_demand(self):
        net = build_braess_like()
        flows = np.array([0.75, 0.25, 0.5, 0.25, 0.75])
        decomposition = decompose_flow(net, flows, "s", "t")
        assert sum(v for _, v in decomposition) == pytest.approx(1.0)
        # Each decomposed path must be a genuine s-t path.
        for path, value in decomposition:
            assert net.edge(path[0]).tail == "s"
            assert net.edge(path[-1]).head == "t"
            assert value > 0.0

    def test_zero_flow(self):
        net = build_braess_like()
        assert decompose_flow(net, np.zeros(5), "s", "t") == []

    def test_edge_flows_recovered(self):
        net = build_braess_like()
        flows = np.array([0.6, 0.4, 0.2, 0.4, 0.6])
        decomposition = decompose_flow(net, flows, "s", "t")
        rebuilt = np.zeros(5)
        for path, value in decomposition:
            for idx in path:
                rebuilt[idx] += value
        assert np.allclose(rebuilt, flows, atol=1e-9)
