"""Tests for Dijkstra shortest paths over edge-cost vectors."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.latency import LinearLatency
from repro.network import Network
from repro.paths import shortest_distances, shortest_path_edge_set, shortest_path_edges


def build_diamond():
    """s -> {a, b} -> t with an extra a -> b edge."""
    net = Network()
    net.add_edge("s", "a", LinearLatency(1.0))  # 0
    net.add_edge("s", "b", LinearLatency(1.0))  # 1
    net.add_edge("a", "t", LinearLatency(1.0))  # 2
    net.add_edge("b", "t", LinearLatency(1.0))  # 3
    net.add_edge("a", "b", LinearLatency(1.0))  # 4
    return net


class TestShortestDistances:
    def test_basic_distances(self):
        net = build_diamond()
        costs = np.array([1.0, 4.0, 1.0, 1.0, 1.0])
        dist, pred = shortest_distances(net, "s", costs)
        assert dist["s"] == 0.0
        assert dist["a"] == 1.0
        assert dist["b"] == 2.0  # via a
        assert dist["t"] == 2.0
        assert pred["a"] == 0

    def test_reverse_distances(self):
        net = build_diamond()
        costs = np.array([1.0, 4.0, 1.0, 1.0, 1.0])
        dist, _ = shortest_distances(net, "t", costs, reverse=True)
        assert dist["t"] == 0.0
        assert dist["a"] == 1.0
        assert dist["s"] == 2.0

    def test_unreachable_node_is_infinite(self):
        net = Network()
        net.add_edge("s", "a", LinearLatency(1.0))
        net.add_node("isolated")
        dist, _ = shortest_distances(net, "s", np.array([1.0]))
        assert math.isinf(dist["isolated"])

    def test_missing_source_rejected(self):
        net = build_diamond()
        with pytest.raises(ModelError):
            shortest_distances(net, "zzz", np.zeros(5))

    def test_negative_costs_rejected(self):
        net = build_diamond()
        with pytest.raises(ModelError):
            shortest_distances(net, "s", np.array([1.0, -1.0, 1.0, 1.0, 1.0]))

    def test_wrong_cost_length_rejected(self):
        net = build_diamond()
        with pytest.raises(ModelError):
            shortest_distances(net, "s", np.zeros(3))


class TestShortestPathEdges:
    def test_recovers_cheapest_path(self):
        net = build_diamond()
        costs = np.array([1.0, 4.0, 1.0, 1.0, 1.0])
        path = shortest_path_edges(net, "s", "t", costs)
        assert path == [0, 2]

    def test_unreachable_sink_raises(self):
        net = Network()
        net.add_edge("s", "a", LinearLatency(1.0))
        net.add_node("t")
        with pytest.raises(ModelError):
            shortest_path_edges(net, "s", "t", np.array([1.0]))

    def test_zero_cost_edges(self):
        net = build_diamond()
        costs = np.zeros(5)
        path = shortest_path_edges(net, "s", "t", costs)
        assert path  # any path is shortest; must return a valid one
        assert net.edge(path[0]).tail == "s"
        assert net.edge(path[-1]).head == "t"


class TestShortestPathEdgeSet:
    def test_single_shortest_path(self):
        net = build_diamond()
        costs = np.array([1.0, 4.0, 1.0, 1.0, 1.0])
        edge_set = shortest_path_edge_set(net, "s", "t", costs)
        assert edge_set == {0, 2}

    def test_multiple_shortest_paths(self):
        net = build_diamond()
        costs = np.array([1.0, 1.0, 1.0, 1.0, 5.0])
        edge_set = shortest_path_edge_set(net, "s", "t", costs)
        assert edge_set == {0, 1, 2, 3}

    def test_tolerance_includes_near_ties(self):
        net = build_diamond()
        costs = np.array([1.0, 1.0 + 1e-12, 1.0, 1.0, 5.0])
        edge_set = shortest_path_edge_set(net, "s", "t", costs, atol=1e-9)
        assert {0, 1, 2, 3} <= edge_set
