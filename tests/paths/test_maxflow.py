"""Tests for the real-capacity max-flow used by MOP's free-flow computation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.latency import LinearLatency
from repro.network import Network
from repro.paths import max_flow


def build_braess_like():
    net = Network()
    net.add_edge("s", "v", LinearLatency(1.0))  # 0
    net.add_edge("s", "w", LinearLatency(1.0))  # 1
    net.add_edge("v", "w", LinearLatency(1.0))  # 2
    net.add_edge("v", "t", LinearLatency(1.0))  # 3
    net.add_edge("w", "t", LinearLatency(1.0))  # 4
    return net


class TestMaxFlow:
    def test_simple_bottleneck(self):
        net = build_braess_like()
        caps = np.array([0.75, 0.25, 0.5, 0.25, 0.75])
        value, flows = max_flow(net, "s", "t", caps)
        assert value == pytest.approx(1.0)
        assert np.all(flows <= caps + 1e-12)

    def test_restricted_edge_set(self):
        net = build_braess_like()
        caps = np.array([0.75, 0.25, 0.5, 0.25, 0.75])
        value, flows = max_flow(net, "s", "t", caps, allowed_edges={0, 2, 4})
        assert value == pytest.approx(0.5)  # bottleneck is the middle edge
        assert flows[1] == 0.0 and flows[3] == 0.0

    def test_zero_capacity_blocks_flow(self):
        net = build_braess_like()
        caps = np.zeros(5)
        value, _ = max_flow(net, "s", "t", caps)
        assert value == 0.0

    def test_flow_conservation(self):
        net = build_braess_like()
        caps = np.array([0.6, 0.4, 0.2, 0.5, 0.5])
        value, flows = max_flow(net, "s", "t", caps)
        for node in ("v", "w"):
            into = sum(flows[i] for i in net.in_edges(node))
            out = sum(flows[i] for i in net.out_edges(node))
            assert into == pytest.approx(out, abs=1e-9)
        out_of_source = sum(flows[i] for i in net.out_edges("s"))
        assert out_of_source == pytest.approx(value, abs=1e-9)

    def test_requires_backward_augmentation(self):
        """A case where the greedy first path must be partially undone."""
        net = Network()
        net.add_edge("s", "a", LinearLatency(1.0))  # 0
        net.add_edge("s", "b", LinearLatency(1.0))  # 1
        net.add_edge("a", "b", LinearLatency(1.0))  # 2
        net.add_edge("a", "t", LinearLatency(1.0))  # 3
        net.add_edge("b", "t", LinearLatency(1.0))  # 4
        caps = np.array([1.0, 1.0, 1.0, 1.0, 1.0])
        value, _ = max_flow(net, "s", "t", caps)
        assert value == pytest.approx(2.0)

    def test_wrong_capacity_length(self):
        net = build_braess_like()
        with pytest.raises(ModelError):
            max_flow(net, "s", "t", np.ones(3))

    def test_missing_node(self):
        net = build_braess_like()
        with pytest.raises(ModelError):
            max_flow(net, "s", "zzz", np.ones(5))

    def test_value_bounded_by_cut(self):
        net = build_braess_like()
        caps = np.array([0.3, 0.2, 1.0, 1.0, 1.0])
        value, _ = max_flow(net, "s", "t", caps)
        assert value == pytest.approx(0.5)  # source cut
