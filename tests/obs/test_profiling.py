"""Profiling hooks: recorder semantics and the `SolveConfig.profile` path."""

from __future__ import annotations

import json

import pytest

from repro.api import SolveConfig, solve
from repro.instances import pigou
from repro.obs.profiling import PhaseRecorder, active, phase, profiled


class TestPhaseRecorder:
    def test_accumulates_calls_and_seconds(self):
        recorder = PhaseRecorder()
        recorder.note("water_fill[nash]", 0.25)
        recorder.note("water_fill[nash]", 0.75)
        recorder.note("frank_wolfe[optimum]", 1.0)
        assert recorder.phases["water_fill[nash]"] == {
            "calls": 2, "seconds": 1.0}
        assert recorder.phases["frank_wolfe[optimum]"]["calls"] == 1

    def test_notes_chain_to_the_parent(self):
        parent = PhaseRecorder()
        child = PhaseRecorder(parent=parent)
        child.note("p", 0.5)
        assert parent.phases["p"] == {"calls": 1, "seconds": 0.5}

    def test_to_dict_sorts_phases_and_carries_total(self):
        recorder = PhaseRecorder()
        recorder.note("b", 1.0)
        recorder.note("a", 2.0)
        data = recorder.to_dict(total_seconds=3.5)
        assert list(data["phases"]) == ["a", "b"]
        assert data["total_seconds"] == 3.5


class TestThreadLocalInstall:
    def test_disabled_is_none(self):
        assert active() is None

    def test_profiled_installs_and_restores(self):
        with profiled() as recorder:
            assert active() is recorder
        assert active() is None

    def test_nested_recorders_chain(self):
        with profiled() as outer:
            with profiled() as inner:
                assert inner.parent is outer
                with phase("p"):
                    pass
            assert active() is outer
        # The inner phase bubbled up to the outer recorder too.
        assert "p" in outer.phases
        assert "p" in inner.phases

    def test_phase_is_a_noop_when_off(self):
        with phase("ignored"):
            pass
        assert active() is None

    def test_profiled_restores_after_exception(self):
        with pytest.raises(RuntimeError):
            with profiled():
                raise RuntimeError("boom")
        assert active() is None


class TestSolveProfile:
    def test_profiled_solve_lands_in_report_metadata(self):
        report = solve(pigou(), "optop",
                       config=SolveConfig(profile=True, cache=False))
        profile = report.profile
        assert profile is not None
        assert profile is report.metadata["profile"]
        assert profile["total_seconds"] > 0
        # optop runs water-filling kernels; at least one phase must show.
        kernels = [name for name in profile["phases"]
                   if name.startswith("water_fill[")]
        assert kernels, profile["phases"]
        for entry in profile["phases"].values():
            assert entry["calls"] >= 1
            assert entry["seconds"] >= 0.0

    def test_unprofiled_solve_has_no_profile(self):
        report = solve(pigou(), "optop", config=SolveConfig(cache=False))
        assert report.profile is None
        assert "profile" not in report.metadata


class TestConfigBackCompat:
    def test_default_config_json_is_unchanged(self):
        # The canonical JSON (and with it every digest-addressed cache
        # key) must be byte-identical for configs that never opt in.
        data = json.loads(SolveConfig().to_json())
        assert "profile" not in data

    def test_profiled_config_serializes_the_flag(self):
        data = json.loads(SolveConfig(profile=True).to_json())
        assert data["profile"] is True

    def test_profile_survives_round_trip(self):
        config = SolveConfig(profile=True)
        rebuilt = SolveConfig.from_dict(json.loads(config.to_json()))
        assert rebuilt.profile is True
        assert SolveConfig.from_dict(
            json.loads(SolveConfig().to_json())).profile is False
