"""Unit tests for tracing: deterministic ids, the ring, Chrome export."""

from __future__ import annotations

import pytest

from repro.obs.tracing import Span, Tracer, span_to_chrome_event, trace_id_for


class FakeClock:
    """A deterministic monotonic clock advanced by the test."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_tracer(**kwargs) -> Tracer:
    return Tracer(service="test", clock=FakeClock(), **kwargs)


class TestTraceIds:
    def test_deterministic_and_digest_sensitive(self):
        assert trace_id_for("abc", 1) == trace_id_for("abc", 1)
        assert trace_id_for("abc", 1) != trace_id_for("abc", 2)
        assert trace_id_for("abc", 1) != trace_id_for("abd", 1)

    def test_sixteen_hex_digits(self):
        tid = trace_id_for("digest", 7)
        assert len(tid) == 16
        int(tid, 16)

    def test_span_ids_are_sequential_per_tracer(self):
        tracer = make_tracer()
        a = tracer.span("a", trace_id="t")
        b = tracer.span("b", trace_id="t")
        assert a.span_id == "test:1"
        assert b.span_id == "test:2"


class TestSpanLifecycle:
    def test_exact_timing_with_injected_clock(self):
        clock = FakeClock()
        tracer = Tracer(service="svc", clock=clock)
        span = tracer.span("op", trace_id="t1")
        clock.now = 2.5
        span.finish()
        assert span.start == 0.0
        assert span.duration == 2.5

    def test_unfinished_span_is_not_exported(self):
        tracer = make_tracer()
        tracer.span("open", trace_id="t")
        assert len(tracer) == 0

    def test_finish_is_idempotent(self):
        tracer = make_tracer()
        span = tracer.span("op", trace_id="t")
        span.finish()
        span.finish()
        assert len(tracer) == 1

    def test_context_manager_annotates_exceptions(self):
        tracer = make_tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("op", trace_id="t") as span:
                raise RuntimeError("boom")
        assert span.annotations["error"] == "RuntimeError"
        assert len(tracer) == 1

    def test_annotations_flow_to_the_record(self):
        tracer = make_tracer()
        with tracer.span("op", trace_id="t", digest="d1") as span:
            span.annotate("retry", 2)
        record = tracer.spans()[0]
        assert record["annotations"] == {"digest": "d1", "retry": 2}
        assert record["parent_id"] is None
        assert record["service"] == "test"

    def test_record_complete_skips_the_live_span(self):
        tracer = make_tracer()
        tracer.record_complete("kernel.water_fill[nash]", trace_id="t",
                               start=1.0, duration=0.25, calls=3)
        record = tracer.spans()[0]
        assert record["start"] == 1.0
        assert record["duration"] == 0.25
        assert record["annotations"] == {"calls": 3}


class TestRingBuffer:
    def test_capacity_bounds_the_ring(self):
        tracer = make_tracer(capacity=3)
        for i in range(10):
            tracer.span(f"op{i}", trace_id="t").finish()
        names = [record["name"] for record in tracer.spans()]
        assert names == ["op7", "op8", "op9"]

    def test_last_n_returns_the_newest(self):
        tracer = make_tracer()
        for i in range(5):
            tracer.span(f"op{i}", trace_id="t").finish()
        names = [record["name"] for record in tracer.spans(last=2)]
        assert names == ["op3", "op4"]

    def test_clear_reports_dropped_count(self):
        tracer = make_tracer()
        tracer.span("a", trace_id="t").finish()
        tracer.span("b", trace_id="t").finish()
        assert tracer.clear() == 2
        assert len(tracer) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            make_tracer(capacity=0)


class TestChromeExport:
    def test_complete_event_shape(self):
        clock = FakeClock()
        tracer = Tracer(service="worker-1", clock=clock)
        clock.now = 1.0
        span = tracer.span("worker.solve", trace_id="abcd",
                           parent_id="gw:1")
        clock.now = 1.5
        span.annotate("status", 200)
        span.finish()
        event = tracer.chrome_trace()["traceEvents"][0]
        assert event["ph"] == "X"
        assert event["name"] == "worker.solve"
        assert event["cat"] == "abcd"           # trace id groups events
        assert event["pid"] == "worker-1"
        assert event["tid"] == "worker-1:1"
        assert event["ts"] == pytest.approx(1.0e6)   # microseconds
        assert event["dur"] == pytest.approx(0.5e6)
        assert event["args"]["status"] == 200
        assert event["args"]["trace_id"] == "abcd"
        assert event["args"]["parent_id"] == "gw:1"

    def test_event_without_parent_omits_the_arg(self):
        event = span_to_chrome_event({
            "trace_id": "t", "span_id": "s:1", "parent_id": None,
            "name": "op", "service": "svc", "start": 0.0,
            "duration": None, "annotations": {}})
        assert "parent_id" not in event["args"]
        assert event["dur"] == 0.0
