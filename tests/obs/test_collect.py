"""Collectors: the `/metrics` view must equal the legacy stats exactly."""

from __future__ import annotations

import json

import pytest

from repro.api import SolveConfig, clear_cache
from repro.instances import pigou, random_linear_parallel
from repro.obs import Observability
from repro.obs.collect import (
    collect_cluster_stats,
    collect_service_stats,
    merged_snapshot,
    render_merged,
)
from repro.obs.metrics import MetricsRegistry, parse_prometheus
from repro.serve import SolveService
from repro.serve.service import ServiceStats
from repro.study.store import ArtifactStore

QUICK = SolveConfig(compute_nash=False)


@pytest.fixture(autouse=True)
def fresh_session_cache():
    clear_cache()
    yield
    clear_cache()


def series_value(parsed, name, **labels):
    return parsed[name][json.dumps(
        {k: str(v) for k, v in labels.items()}, sort_keys=True)]


class TestServiceEquivalence:
    def drive_service(self, tmp_path) -> ServiceStats:
        store = ArtifactStore(tmp_path / "store")
        with SolveService(store=store, max_wait_ms=1.0) as service:
            instance = random_linear_parallel(4, demand=2.0, seed=3)
            service.solve(instance, "optop", config=QUICK, timeout=30)
            service.solve(instance, "optop", config=QUICK, timeout=30)
            service.solve(pigou(), "optop", config=QUICK, timeout=30)
            return service.stats()

    def test_every_legacy_counter_reproduced_exactly(self, tmp_path):
        stats = self.drive_service(tmp_path)
        parsed = parse_prometheus(
            collect_service_stats(stats).render_prometheus())
        data = stats.to_dict()

        assert parsed["repro_requests_total"]["{}"] == data["requests"]
        assert series_value(parsed, "repro_cache_hits_total",
                            tier="tier1") == data["tier1_hits"]
        assert series_value(parsed, "repro_cache_hits_total",
                            tier="tier2") == data["tier2_hits"]
        assert parsed["repro_coalesced_total"]["{}"] == data["coalesced"]
        assert parsed["repro_enqueued_total"]["{}"] == data["enqueued"]
        assert parsed["repro_rejected_total"]["{}"] == data["rejected"]
        assert parsed["repro_batches_total"]["{}"] == data["batches"]
        assert parsed["repro_batched_requests_total"]["{}"] == \
            data["batched_requests"]
        assert parsed["repro_queue_peak"]["{}"] == data["queue_peak"]
        assert parsed["repro_pending"]["{}"] == data["pending"]

        cache = data["cache"]
        assert parsed["repro_tiered_cache_lookups_total"]["{}"] == \
            cache["lookups"]
        assert series_value(parsed, "repro_tiered_cache_hits_total",
                            tier="memory") == cache["memory_hits"]
        assert series_value(parsed, "repro_tiered_cache_hits_total",
                            tier="store") == cache["store_hits"]
        assert parsed["repro_tiered_cache_misses_total"]["{}"] == \
            cache["misses"]
        assert parsed["repro_tiered_cache_puts_total"]["{}"] == \
            cache["puts"]
        assert parsed["repro_memory_cache_hits_total"]["{}"] == \
            cache["memory"]["hits"]
        assert parsed["repro_memory_cache_size"]["{}"] == \
            cache["memory"]["size"]
        assert parsed["repro_store_hits_total"]["{}"] == \
            cache["store"]["hits"]
        assert parsed["repro_store_writes_total"]["{}"] == \
            cache["store"]["writes"]

    def test_accepts_object_or_mapping(self, tmp_path):
        stats = self.drive_service(tmp_path)
        from_object = collect_service_stats(stats).snapshot()
        from_mapping = collect_service_stats(stats.to_dict()).snapshot()
        assert from_object == from_mapping

    def test_foreign_extra_counters_become_labeled_series(self):
        stats = ServiceStats(requests=2, enqueued=2,
                             extra={"future_counter": 7})
        parsed = parse_prometheus(
            collect_service_stats(stats).render_prometheus())
        assert series_value(parsed, "repro_extra_total",
                            counter="future_counter") == 7


class TestClusterEquivalence:
    def cluster_stats(self):
        return {
            "gateway": {"requests": 50, "completed": 48, "remote_errors": 1,
                        "overload_retries": 3, "reroutes": 2, "failures": 2,
                        "timeouts": 1, "breaker_opens": 2,
                        "breaker_closes": 1, "unavailable_waits": 0,
                        "worker_respawns": 1},
            "workers": {
                "127.0.0.1:1001": {"alive": True, "breaker_open": False,
                                   "forwarded": 30, "respawns": 1,
                                   "stats": None},
                "127.0.0.1:1002": {"alive": False, "breaker_open": True,
                                   "forwarded": 20, "respawns": 0,
                                   "stats": None},
            },
            "merged": ServiceStats(requests=50, tier1_hits=20, tier2_hits=5,
                                   enqueued=25).to_dict(),
            "supervisor": {"enabled": True, "max_respawns": 3,
                           "worker_respawns": 1, "respawn_failures": 0},
        }

    def test_gateway_workers_supervisor_and_merged(self):
        stats = self.cluster_stats()
        parsed = parse_prometheus(
            collect_cluster_stats(stats).render_prometheus())
        for key, name in (
                ("requests", "repro_gateway_requests_total"),
                ("completed", "repro_gateway_completed_total"),
                ("overload_retries", "repro_gateway_overload_retries_total"),
                ("reroutes", "repro_gateway_reroutes_total"),
                ("timeouts", "repro_gateway_timeouts_total"),
                ("breaker_opens", "repro_gateway_breaker_opens_total"),
                ("worker_respawns", "repro_gateway_worker_respawns_total")):
            assert parsed[name]["{}"] == stats["gateway"][key], name
        assert series_value(parsed, "repro_worker_alive",
                            node="127.0.0.1:1001") == 1
        assert series_value(parsed, "repro_worker_alive",
                            node="127.0.0.1:1002") == 0
        assert series_value(parsed, "repro_worker_breaker_open",
                            node="127.0.0.1:1002") == 1
        assert series_value(parsed, "repro_worker_forwarded_total",
                            node="127.0.0.1:1001") == 30
        assert parsed["repro_supervisor_respawns_total"]["{}"] == 1
        # The merged ServiceStats section rides along at equality too.
        assert parsed["repro_requests_total"]["{}"] == 50
        assert series_value(parsed, "repro_cache_hits_total",
                            tier="tier1") == 20

    def test_chaos_report_embeds_the_same_numbers(self):
        stats = self.cluster_stats()
        snapshot = collect_cluster_stats(stats).snapshot()
        assert snapshot["repro_gateway_requests_total"]["samples"] == [
            {"labels": {}, "value": 50}]
        json.dumps(snapshot)  # ChaosReport.to_dict must stay serializable


class TestMergedViews:
    def test_render_merged_concatenates_disjoint_registries(self):
        obs = Observability(service="svc")
        obs.registry.counter("repro_live_total").inc(3)
        scraped = MetricsRegistry()
        scraped.counter("repro_requests_total").set_exact(9)
        parsed = parse_prometheus(render_merged(scraped, obs.registry))
        assert parsed["repro_requests_total"]["{}"] == 9
        assert parsed["repro_live_total"]["{}"] == 3

    def test_render_merged_skips_none(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total").inc()
        assert "repro_x_total 1" in render_merged(registry, None)
        assert render_merged(None) == "\n"

    def test_merged_snapshot_unions_names(self):
        a = MetricsRegistry()
        a.counter("repro_a_total").inc()
        b = MetricsRegistry()
        b.counter("repro_b_total").inc(2)
        merged = merged_snapshot(a, None, b)
        assert set(merged) == {"repro_a_total", "repro_b_total"}
