"""Unit tests for the metrics registry: exactness, exposition, quantiles."""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    histogram_quantile,
    parse_prometheus,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError, match="monotonic"):
            Counter().inc(-1)

    def test_set_exact_refuses_to_regress(self):
        counter = Counter()
        counter.set_exact(10)
        counter.set_exact(10)  # idempotent re-scrape is fine
        with pytest.raises(ValueError, match="regress"):
            counter.set_exact(9)

    def test_concurrent_increments_are_exact(self):
        counter = Counter()

        def worker():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestGauge:
    def test_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value == 3


class TestHistogram:
    def test_default_buckets_are_exponential(self):
        assert len(DEFAULT_LATENCY_BUCKETS) == 16
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(0.0005)
        ratios = [b2 / b1 for b1, b2 in zip(DEFAULT_LATENCY_BUCKETS,
                                            DEFAULT_LATENCY_BUCKETS[1:])]
        assert all(r == pytest.approx(2.0) for r in ratios)

    def test_rejects_non_increasing_bounds(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(buckets=[1.0, 1.0, 2.0])

    def test_snapshot_is_cumulative_with_inf_tail(self):
        hist = Histogram(buckets=[1.0, 2.0, 4.0])
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["buckets"] == [[1.0, 1], [2.0, 2], [4.0, 3],
                                   [math.inf, 4]]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(105.0)

    def test_boundary_value_lands_in_its_le_bucket(self):
        hist = Histogram(buckets=[1.0, 2.0])
        hist.observe(1.0)  # le is inclusive (Prometheus convention)
        assert hist.snapshot()["buckets"][0] == [1.0, 1]

    def test_quantile_interpolates_within_bucket(self):
        hist = Histogram(buckets=[1.0, 2.0, 4.0])
        for _ in range(100):
            hist.observe(1.5)
        # All mass in (1, 2]; the median interpolates inside that bucket.
        assert 1.0 < hist.quantile(0.5) <= 2.0

    def test_quantile_of_empty_histogram_is_nan(self):
        assert math.isnan(Histogram().quantile(0.5))

    def test_quantile_range_validated(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram().quantile(1.5)

    def test_overflow_bucket_clamps_to_lower_bound(self):
        hist = Histogram(buckets=[1.0])
        hist.observe(50.0)
        assert hist.quantile(0.99) == pytest.approx(1.0)


class TestQuantileBaseline:
    def test_delta_quantile_sees_only_new_observations(self):
        hist = Histogram(buckets=[1.0, 2.0, 4.0])
        for _ in range(10):
            hist.observe(0.5)  # old regime: fast
        before = hist.snapshot()
        for _ in range(10):
            hist.observe(3.0)  # new regime: slow
        after = hist.snapshot()
        overall = histogram_quantile(after, 0.5)
        delta = histogram_quantile(after, 0.5, baseline=before)
        assert overall <= 2.0       # half the total population is fast
        assert 2.0 < delta <= 4.0   # the delta population is all slow

    def test_delta_of_identical_snapshots_is_nan(self):
        hist = Histogram(buckets=[1.0])
        hist.observe(0.5)
        snap = hist.snapshot()
        assert math.isnan(histogram_quantile(snap, 0.5, baseline=snap))


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", "help")
        b = registry.counter("repro_x_total")
        a.inc()
        assert b.value == 1

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x_total")

    def test_label_set_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", labels=("tier",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("repro_x_total", labels=("node",))

    def test_labeled_family_validates_label_names(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_hits_total", labels=("tier",))
        family.labels(tier="tier1").inc(3)
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(shard="a")

    def test_snapshot_shape_and_inf_serialization(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "things").inc(2)
        registry.histogram("repro_lat_seconds", buckets=[1.0]).observe(0.5)
        snap = registry.snapshot()
        assert snap["repro_x_total"]["type"] == "counter"
        assert snap["repro_x_total"]["samples"] == [
            {"labels": {}, "value": 2}]
        buckets = snap["repro_lat_seconds"]["samples"][0]["buckets"]
        assert buckets == [[1.0, 1], ["+Inf", 1]]
        json.dumps(snap)  # the whole snapshot must be JSON-compatible

    def test_snapshot_is_json_round_trippable(self):
        registry = MetricsRegistry()
        registry.gauge("repro_depth").set(7)
        assert json.loads(registry.to_json()) == registry.snapshot()


class TestExposition:
    def build(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("repro_requests_total", "Requests").inc(42)
        hits = registry.counter("repro_cache_hits_total", "Hits by tier",
                                labels=("tier",))
        hits.labels(tier="tier1").inc(30)
        hits.labels(tier="tier2").inc(5)
        registry.gauge("repro_pending").set(3)
        hist = registry.histogram("repro_latency_seconds", "Latency",
                                  buckets=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(5.0)
        return registry

    def test_render_contains_help_type_and_samples(self):
        text = self.build().render_prometheus()
        assert "# HELP repro_requests_total Requests" in text
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 42" in text
        assert 'repro_cache_hits_total{tier="tier1"} 30' in text
        assert 'repro_latency_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_latency_seconds_count 2" in text

    def test_parse_inverts_render(self):
        registry = self.build()
        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed["repro_requests_total"]["{}"] == 42.0
        assert parsed["repro_cache_hits_total"][
            json.dumps({"tier": "tier1"})] == 30.0
        assert parsed["repro_latency_seconds_bucket"][
            json.dumps({"le": "0.1"})] == 1.0
        assert parsed["repro_latency_seconds_sum"]["{}"] == \
            pytest.approx(5.05)

    def test_label_values_survive_escaping(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_x_total", labels=("name",))
        tricky = 'a"b\\c\nd'
        family.labels(name=tricky).inc()
        parsed = parse_prometheus(registry.render_prometheus())
        assert parsed["repro_x_total"][
            json.dumps({"name": tricky})] == 1.0

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="value"):
            parse_prometheus("repro_x_total notanumber")
