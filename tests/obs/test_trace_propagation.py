"""Trace propagation: one trace id across gateway -> worker -> batch.

The fast tests run an in-process `WorkerServer` (real sockets, no child
processes) and a `ClusterGateway` against scripted fake workers, covering
the retry-after-503 and failover annotations without timing dependence.
The slow test drives a real 2-worker cluster and asserts the aggregated
cross-process trace."""

from __future__ import annotations

import asyncio
import json
import socket
from collections import deque

import pytest

from repro.api.config import SolveConfig
from repro.cluster import protocol
from repro.cluster.gateway import ClusterGateway
from repro.cluster.hashing import route
from repro.cluster.worker import WorkerServer
from repro.instances import pigou, random_linear_parallel
from repro.obs import Observability, trace_id_for

QUICK = SolveConfig(compute_nash=False)


def spans_by_name(obs: Observability):
    out = {}
    for record in obs.tracer.spans():
        out.setdefault(record["name"], []).append(record)
    return out


class TestWorkerSpans:
    def test_one_solve_yields_worker_and_batch_spans_sharing_the_id(self):
        obs = Observability(service="worker-test")
        trace_id = trace_id_for("digest", 1)
        body, digest = protocol.encode_solve_request(
            random_linear_parallel(4, demand=2.0, seed=11), "optop", QUICK)

        async def main():
            worker = WorkerServer(obs=obs)
            await worker.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", worker.port)
                try:
                    await protocol.write_request(
                        writer, "POST", "/solve", body,
                        headers={protocol.DIGEST_HEADER: digest,
                                 protocol.TRACE_HEADER: trace_id})
                    status, _, payload = await protocol.read_response(reader)
                    assert status == 200, payload
                finally:
                    writer.close()
            finally:
                await worker.stop()

        asyncio.run(main())
        spans = spans_by_name(obs)
        assert set(spans) >= {"worker.solve", "service.batch"}, set(spans)
        solve_span = spans["worker.solve"][0]
        batch_span = spans["service.batch"][0]
        assert solve_span["trace_id"] == trace_id
        assert batch_span["trace_id"] == trace_id
        kernel_spans = [record for name, records in spans.items()
                        if name.startswith("kernel.") for record in records]
        assert kernel_spans, set(spans)
        assert all(record["trace_id"] == trace_id
                   for record in kernel_spans)

    def test_worker_without_trace_header_records_no_solve_span(self):
        obs = Observability(service="worker-test")
        body, digest = protocol.encode_solve_request(pigou(), "optop", QUICK)

        async def main():
            worker = WorkerServer(obs=obs)
            await worker.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", worker.port)
                try:
                    await protocol.write_request(
                        writer, "POST", "/solve", body,
                        headers={protocol.DIGEST_HEADER: digest})
                    status, _, _ = await protocol.read_response(reader)
                    assert status == 200
                finally:
                    writer.close()
            finally:
                await worker.stop()

        asyncio.run(main())
        names = set(spans_by_name(obs))
        assert "worker.solve" not in names


class FakeWorker:
    """A scripted shard: answers each request from a response queue."""

    def __init__(self, responses):
        self.responses = deque(responses)
        self.requests = []  # (method, path, headers) in arrival order
        self.server = None
        self.port = None

    async def start(self):
        self.server = await asyncio.start_server(
            self._handle, host="127.0.0.1", port=0)
        self.port = self.server.sockets[0].getsockname()[1]

    async def stop(self):
        self.server.close()
        await self.server.wait_closed()

    async def _handle(self, reader, writer):
        try:
            while True:
                message = await protocol.read_request(reader)
                if message is None:
                    break
                method, path, headers, _ = message
                self.requests.append((method, path, headers))
                status, payload = self.responses.popleft() \
                    if self.responses else (200, b"{}")
                await protocol.write_response(writer, status, payload)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()


def free_port() -> int:
    """A port with nothing listening (for the dead-worker endpoint)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


OVERLOADED = json.dumps({"error": "ServiceOverloadedError",
                         "message": "full", "queue_depth": 9}).encode()


class TestGatewayAnnotations:
    def test_retry_after_503_is_annotated(self):
        obs = Observability(service="gateway")

        async def main():
            worker = FakeWorker([(503, OVERLOADED), (200, b"{}")])
            await worker.start()
            gateway = ClusterGateway([("127.0.0.1", worker.port)],
                                     backoff_base_ms=1.0,
                                     backoff_cap_ms=2.0, obs=obs)
            try:
                status, payload = await gateway.submit_encoded(
                    b"{}", "digest-1")
                assert status == 200, payload
            finally:
                gateway.close()
                await worker.stop()
            return worker.requests

        requests = asyncio.run(main())
        span = spans_by_name(obs)["gateway.request"][0]
        assert span["annotations"]["retry"] == 1
        assert span["annotations"]["status"] == 200
        assert "reroutes" not in span["annotations"]
        # Both attempts shipped the same deterministic trace id.
        shipped = [headers[protocol.TRACE_HEADER]
                   for method, path, headers in requests
                   if path == "/solve"]
        assert len(shipped) == 2
        assert set(shipped) == {span["trace_id"]}
        assert span["trace_id"] == trace_id_for("digest-1", 1)
        # The retry went to the histogram too: one end-to-end sample.
        hist = obs.latency_histogram("repro_gateway_request_seconds")
        assert hist.snapshot()["count"] == 1

    def test_failover_to_the_surviving_worker_is_annotated(self):
        obs = Observability(service="gateway")
        dead_port = free_port()

        async def main():
            live = FakeWorker([(200, b"{}")])
            await live.start()
            dead_id = f"127.0.0.1:{dead_port}"
            node_ids = [dead_id, f"127.0.0.1:{live.port}"]
            # Pick a digest the rendezvous router sends to the dead shard
            # first, so the request must fail over.
            digest = next(f"digest-{i}" for i in range(1000)
                          if route(f"digest-{i}", node_ids) == dead_id)
            gateway = ClusterGateway(
                [("127.0.0.1", dead_port), ("127.0.0.1", live.port)],
                backoff_base_ms=1.0, backoff_cap_ms=2.0, obs=obs)
            try:
                status, payload = await gateway.submit_encoded(
                    b"{}", digest)
                assert status == 200, payload
            finally:
                gateway.close()
                await live.stop()

        asyncio.run(main())
        span = spans_by_name(obs)["gateway.request"][0]
        assert span["annotations"]["reroutes"] == 1
        assert span["annotations"]["retry"] == 0
        assert span["annotations"]["status"] == 200

    def test_disabled_obs_ships_no_trace_header(self):
        async def main():
            worker = FakeWorker([(200, b"{}")])
            await worker.start()
            gateway = ClusterGateway([("127.0.0.1", worker.port)])
            try:
                status, _ = await gateway.submit_encoded(b"{}", "digest-1")
                assert status == 200
            finally:
                gateway.close()
                await worker.stop()
            return worker.requests

        requests = asyncio.run(main())
        _, _, headers = requests[0]
        assert protocol.TRACE_HEADER not in headers


@pytest.mark.slow
class TestClusterTracePropagation:
    def test_cross_process_trace_shares_one_id(self, tmp_path):
        from repro.cluster import start_cluster

        instance = random_linear_parallel(4, demand=2.0, seed=23)
        with start_cluster(n_workers=2, store_dir=str(tmp_path / "store"),
                           obs=True) as cluster:
            report = cluster.solve(instance, "optop", config=QUICK,
                                   timeout=60.0)
            assert report.beta is not None
            events = cluster.trace()["traceEvents"]

        by_trace = {}
        for event in events:
            by_trace.setdefault(event["cat"], set()).add(event["name"])
        # The one request produced one trace with a gateway span, a worker
        # span and at least one batch span, all sharing the trace id.
        full = [names for names in by_trace.values()
                if {"gateway.request", "worker.solve",
                    "service.batch"} <= names]
        assert full, by_trace
        gateway_events = [event for event in events
                          if event["name"] == "gateway.request"]
        assert gateway_events[0]["args"]["retry"] == 0
        # Chrome trace events from different processes stay well-formed.
        services = {event["pid"] for event in events}
        assert any(pid == "gateway" for pid in services)
        assert any(pid.startswith("worker-") for pid in services)
