"""Tests for price-of-anarchy and Stackelberg metrics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ModelError, StrategyError
from repro.baselines import aloof, llf, scale
from repro.core import optop
from repro.metrics import (
    a_posteriori_ratio,
    coordination_ratio,
    general_latency_bound,
    linear_latency_bound,
    linear_price_of_anarchy_bound,
    price_of_anarchy,
)
from repro.instances import (
    braess_paradox,
    pigou,
    pigou_nonlinear,
    random_linear_parallel,
    roughgarden_example,
)
from repro.latency import LinearLatency
from repro.network import ParallelLinkInstance


class TestPriceOfAnarchy:
    def test_pigou_is_four_thirds(self):
        assert price_of_anarchy(pigou()) == pytest.approx(4.0 / 3.0)

    def test_braess_is_four_thirds(self):
        assert price_of_anarchy(braess_paradox()) == pytest.approx(4.0 / 3.0,
                                                                   rel=1e-5)

    def test_nonlinear_pigou_exceeds_linear_bound(self):
        assert price_of_anarchy(pigou_nonlinear(6.0)) > 4.0 / 3.0 + 0.1

    def test_identical_links_have_no_anarchy(self):
        instance = ParallelLinkInstance([LinearLatency(1.0)] * 3, 1.0)
        assert price_of_anarchy(instance) == pytest.approx(1.0)

    def test_coordination_ratio_alias(self):
        assert coordination_ratio(pigou()) == price_of_anarchy(pigou())

    def test_unsupported_type_rejected(self):
        with pytest.raises(ModelError):
            price_of_anarchy([1, 2, 3])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=40))
    def test_linear_instances_respect_four_thirds(self, seed):
        instance = random_linear_parallel(5, demand=2.0, seed=seed)
        assert price_of_anarchy(instance) <= 4.0 / 3.0 + 1e-6

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=40))
    def test_poa_at_least_one(self, seed):
        instance = random_linear_parallel(4, demand=1.0, seed=seed)
        assert price_of_anarchy(instance) >= 1.0 - 1e-9


class TestAPosterioriRatio:
    def test_aloof_ratio_equals_poa(self):
        instance = pigou()
        assert a_posteriori_ratio(instance, aloof(instance)) == pytest.approx(
            price_of_anarchy(instance))

    def test_optop_strategy_has_ratio_one(self):
        instance = pigou()
        result = optop(instance)
        assert a_posteriori_ratio(instance, result.strategy) == pytest.approx(1.0)

    def test_network_strategy_ratio(self):
        instance = roughgarden_example()
        from repro.core import mop
        result = mop(instance)
        assert a_posteriori_ratio(instance, result.strategy) == pytest.approx(
            1.0, abs=1e-5)

    def test_mismatched_strategy_type_rejected(self):
        with pytest.raises(StrategyError):
            a_posteriori_ratio(pigou(), aloof(roughgarden_example()))

    def test_llf_ratio_within_bounds(self):
        instance = random_linear_parallel(5, demand=2.0, seed=3)
        for alpha in (0.25, 0.5, 0.75):
            ratio = a_posteriori_ratio(instance, llf(instance, alpha))
            assert ratio <= linear_latency_bound(alpha) + 1e-6
            assert ratio <= general_latency_bound(alpha) + 1e-6
            assert ratio >= 1.0 - 1e-9


class TestBoundFormulas:
    def test_general_bound_values(self):
        assert general_latency_bound(0.5) == pytest.approx(2.0)
        assert general_latency_bound(1.0) == pytest.approx(1.0)
        assert general_latency_bound(0.0) == float("inf")

    def test_linear_bound_values(self):
        assert linear_latency_bound(0.0) == pytest.approx(4.0 / 3.0)
        assert linear_latency_bound(1.0) == pytest.approx(1.0)

    def test_linear_poa_bound(self):
        assert linear_price_of_anarchy_bound() == pytest.approx(4.0 / 3.0)

    def test_bounds_reject_bad_alpha(self):
        with pytest.raises(StrategyError):
            general_latency_bound(1.5)
        with pytest.raises(StrategyError):
            linear_latency_bound(-0.5)

    def test_linear_bound_tighter_than_general_for_small_alpha(self):
        for alpha in (0.1, 0.3, 0.5):
            assert linear_latency_bound(alpha) < general_latency_bound(alpha)
