"""Tests for the per-class Pigou bounds on the price of anarchy."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ModelError
from repro.metrics import polynomial_price_of_anarchy_bound, price_of_anarchy
from repro.instances import pigou_nonlinear, random_polynomial_parallel


class TestPolynomialBoundFormula:
    def test_degree_one_is_four_thirds(self):
        assert polynomial_price_of_anarchy_bound(1.0) == pytest.approx(4.0 / 3.0)

    def test_degree_two_value(self):
        # rho(2) = (1 - 2 * 3^(-3/2))^(-1) ~ 1.6258
        assert polynomial_price_of_anarchy_bound(2.0) == pytest.approx(1.6258,
                                                                       abs=1e-3)

    def test_monotone_in_degree(self):
        values = [polynomial_price_of_anarchy_bound(d) for d in (1, 2, 3, 5, 8)]
        assert values == sorted(values)
        assert values[-1] > 2.0

    def test_degree_below_one_rejected(self):
        with pytest.raises(ModelError):
            polynomial_price_of_anarchy_bound(0.5)


class TestBoundIsTightAndValid:
    @pytest.mark.parametrize("degree", [1.0, 2.0, 3.0, 4.0, 6.0])
    def test_nonlinear_pigou_attains_the_bound(self, degree):
        """The x^d Pigou instance realises the worst case exactly."""
        poa = price_of_anarchy(pigou_nonlinear(degree))
        assert poa == pytest.approx(polynomial_price_of_anarchy_bound(degree),
                                    rel=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=40),
           st.integers(min_value=1, max_value=3))
    def test_random_polynomial_instances_respect_the_bound(self, seed, max_degree):
        instance = random_polynomial_parallel(5, demand=2.0, seed=seed,
                                              max_degree=max_degree)
        poa = price_of_anarchy(instance)
        assert poa <= polynomial_price_of_anarchy_bound(float(max_degree)) + 1e-6
