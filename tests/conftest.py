"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.instances import (
    braess_paradox,
    figure_4_example,
    pigou,
    random_affine_common_slope,
    random_linear_parallel,
    roughgarden_example,
)


@pytest.fixture
def pigou_instance():
    """Pigou's two-link example with unit demand."""
    return pigou()


@pytest.fixture
def figure4_instance():
    """The five-link instance of the paper's Figures 4-6."""
    return figure_4_example()


@pytest.fixture
def braess_instance():
    """The classic Braess paradox network."""
    return braess_paradox()


@pytest.fixture
def roughgarden_instance():
    """The paper's Figure 7 network (Roughgarden Example 6.5.1 structure)."""
    return roughgarden_example()


@pytest.fixture
def random_linear_instance():
    """A deterministic random 5-link instance with affine latencies."""
    return random_linear_parallel(5, demand=2.0, seed=123)


@pytest.fixture
def common_slope_instance():
    """A deterministic 4-link common-slope instance (Theorem 2.4 family)."""
    return random_affine_common_slope(4, demand=2.0, seed=7, slope=1.0)


def pytest_addoption(parser):
    """Register the golden-fixture refresh flag.

    ``pytest --update-golden`` rewrites the checked-in JSON tables under
    ``tests/fixtures/golden/`` from the current code instead of comparing
    against them; review the diff and commit deliberately (see
    tests/README.md).
    """
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite tests/fixtures/golden/*.json from the current code "
             "instead of asserting against it")


@pytest.fixture
def update_golden(request) -> bool:
    """Whether this run should rewrite golden fixtures."""
    return bool(request.config.getoption("--update-golden"))
