"""The README's code blocks are executable documentation — keep them true.

Every fenced ``python`` block in README.md is extracted and executed in a
scratch working directory (blocks share one namespace, in order, like a
doctest session).  The quickstart block runs in the fast lane — CI's
doctest-style check that the front-page API snippet matches the current
API; the remaining blocks (studies, serving, experiments) run under the
slow marker.
"""

from __future__ import annotations

import pathlib
import re

import pytest

from repro.api import clear_cache

README = pathlib.Path(__file__).resolve().parents[1] / "README.md"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks():
    return _FENCE.findall(README.read_text(encoding="utf-8"))


def test_readme_has_python_blocks():
    assert len(_python_blocks()) >= 3


def test_quickstart_block_runs_and_matches_the_api(tmp_path, monkeypatch):
    """The doctest-style CI check of the front-page quickstart snippet."""
    monkeypatch.chdir(tmp_path)
    clear_cache()
    blocks = _python_blocks()
    namespace: dict = {}
    exec(compile(blocks[0], str(README) + "[quickstart]", "exec"), namespace)
    # The snippet's stated outputs, re-asserted explicitly.
    report = namespace["report"]
    assert report.strategy == "optop"  # last solve in the block
    assert report.beta == pytest.approx(0.5)
    assert "reports" in namespace


@pytest.mark.slow
def test_every_readme_block_runs(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    clear_cache()
    namespace: dict = {}
    for index, block in enumerate(_python_blocks()):
        exec(compile(block, f"{README}[block {index}]", "exec"), namespace)
