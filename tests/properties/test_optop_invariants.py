"""Seed-randomized invariants of OpTop / the Price of Optimum.

Across every latency family and pinned seed, the paper's guarantees must
hold: the induced cost is never below the system optimum (so the a
posteriori price of optimum ``C(S+T)/C(O)`` is >= 1 — and for OpTop it is
exactly 1, Corollary 2.2), and the controlled fraction beta is a genuine
fraction in [0, 1] matching the Leader's actual flow.
"""

from __future__ import annotations

import pytest

from families import FAMILIES, SEEDS, make_instance
from repro.api import SolveConfig, solve


def _report(family, seed):
    return solve(make_instance(family, seed), "optop",
                 config=SolveConfig(cache=False, compute_nash=True))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("family", FAMILIES)
def test_induced_cost_never_below_optimum(family, seed):
    report = _report(family, seed)
    slack = 1e-7 * max(1.0, abs(report.optimum_cost))
    assert report.induced_cost >= report.optimum_cost - slack
    assert report.cost_ratio >= 1.0 - 1e-7


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("family", FAMILIES)
def test_optop_attains_the_optimum(family, seed):
    """Corollary 2.2: OpTop's strategy induces exactly C(O)."""
    report = _report(family, seed)
    assert report.induced_cost == pytest.approx(report.optimum_cost,
                                                rel=1e-5, abs=1e-7)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("family", FAMILIES)
def test_controlled_fraction_is_a_fraction(family, seed):
    report = _report(family, seed)
    assert -1e-9 <= report.beta <= 1.0 + 1e-9
    assert report.controlled_flow == pytest.approx(
        report.beta * sum(report.optimum_flows), rel=1e-6, abs=1e-7)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("family", FAMILIES)
def test_beta_positive_only_when_anarchy_hurts(family, seed):
    """beta > 0 exactly when selfish routing is suboptimal."""
    report = _report(family, seed)
    gap = report.nash_cost - report.optimum_cost
    scale = max(1.0, abs(report.optimum_cost))
    if report.beta <= 1e-9:
        assert gap <= 1e-6 * scale, "beta = 0 but the Nash flow is wasteful"
    if gap > 1e-5 * scale:
        assert report.beta > 1e-9, "anarchy gap open but no control needed?"


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("family", FAMILIES)
def test_leader_plays_within_the_optimum(family, seed):
    """The strategy loads each link with at most its optimum flow."""
    report = _report(family, seed)
    for s, o in zip(report.leader_flows, report.optimum_flows):
        assert s <= o + 1e-6
