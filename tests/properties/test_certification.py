"""Certification invariants of the ``exact`` strategy.

Across the adversarial families (seed-parametrized like the rest of the
property suite) the MILP-certified baseline must dominate every heuristic
it claims to certify:

* ``optimum <= exact``: the social optimum lower-bounds any induced
  Stackelberg outcome, so the certified cost can never beat it;
* ``exact <= heuristic + tol`` for llf/scale/aloof at the same alpha —
  the candidate set of :func:`repro.baselines.exact.exact_strategy`
  includes each of them (mimic-nash covers aloof), so exact can only win;
* the certified ``optimality_gap`` is non-negative and consistent with
  ``lower_bound``/``certified_cost``;
* ``brute_force`` agrees with the MILP-backed exact cost to 1e-6 on a
  grid-aligned instance (Pigou at alpha = 0.5, where the optimum puts the
  whole leader budget on the constant link — a grid point at any even
  resolution).
"""

from __future__ import annotations

import math

import pytest

from repro.api import SolveConfig, solve
from repro.equilibrium import parallel_optimum
from repro.instances import (
    heavy_tail_capacity,
    mixed_family_soup,
    near_degenerate_breakpoints,
    pigou,
    pigou_chain,
)

ALPHA = 0.5
CONFIG = SolveConfig(alpha=ALPHA)

#: exact includes every heuristic in its candidate set, so it can only be
#: better up to the solver tolerances of the heuristics themselves.
DOMINANCE_TOL = 1e-7

SEEDS = (0, 1, 2)

FAMILIES = {
    "near_degenerate": lambda seed: near_degenerate_breakpoints(
        4, demand=1.5, seed=seed, epsilon=1e-6),
    "heavy_tail": lambda seed: heavy_tail_capacity(
        4, seed=seed, demand_fraction=0.9, tail_index=1.5),
    "pigou_chain": lambda seed: pigou_chain(
        2, degree=2.0, cost_ratio=3.0 + 0.5 * seed),
    "soup": lambda seed: mixed_family_soup(5, demand=1.0, seed=seed),
}

CASES = [(family, seed) for family in sorted(FAMILIES) for seed in SEEDS]


def _exact_report(instance):
    report = solve(instance, "exact", config=CONFIG)
    certification = report.metadata["certification"]
    return report, certification


@pytest.mark.parametrize("family,seed", CASES)
def test_certification_is_internally_consistent(family, seed):
    instance = FAMILIES[family](seed)
    report, certification = _exact_report(instance)
    lower = certification["lower_bound"]
    cost = certification["certified_cost"]
    gap = certification["optimality_gap"]
    assert math.isfinite(report.induced_cost)
    assert report.induced_cost == pytest.approx(cost, rel=1e-12, abs=1e-12)
    assert gap >= 0.0
    assert lower <= cost + 1e-12
    assert gap == pytest.approx(max(0.0, cost - lower), rel=1e-9, abs=1e-12)
    assert certification["alpha"] == ALPHA


@pytest.mark.parametrize("family,seed", CASES)
def test_optimum_lower_bounds_exact(family, seed):
    instance = FAMILIES[family](seed)
    report, _ = _exact_report(instance)
    optimum = parallel_optimum(instance)
    assert optimum.cost <= report.induced_cost + 1e-9


@pytest.mark.parametrize("family,seed", CASES)
@pytest.mark.parametrize("heuristic", ("llf", "scale", "aloof"))
def test_exact_dominates_heuristics(family, seed, heuristic):
    instance = FAMILIES[family](seed)
    report, _ = _exact_report(instance)
    rival = solve(instance, heuristic, config=CONFIG)
    slack = DOMINANCE_TOL * max(1.0, abs(rival.induced_cost))
    assert report.induced_cost <= rival.induced_cost + slack, (
        f"exact lost to {heuristic} on ({family}, seed={seed}): "
        f"{report.induced_cost!r} > {rival.induced_cost!r}")


def test_brute_force_agrees_with_exact_on_grid_aligned_instance():
    # Pigou at alpha=0.5: the optimal Stackelberg strategy routes the whole
    # leader budget onto the constant link (induced cost 0.75), which lies
    # on the brute-force grid at any resolution, so both solvers must land
    # on the same cost to well below the 1e-6 agreement bound.
    instance = pigou()
    config = SolveConfig(alpha=ALPHA, brute_force_resolution=64)
    exact = solve(instance, "exact", config=CONFIG)
    brute = solve(instance, "brute_force", config=config)
    assert abs(exact.induced_cost - brute.induced_cost) <= 1e-6
    assert exact.induced_cost == pytest.approx(0.75, abs=1e-9)


def test_certified_gap_bounds_true_regret_on_pigou():
    # On Pigou the true optimum (0.75) is known in closed form, so the
    # certificate can be checked against ground truth: the lower bound
    # must not exceed it and the certified gap must cover the distance.
    _, certification = _exact_report(pigou())
    assert certification["lower_bound"] <= 0.75 + 1e-9
    assert certification["certified_cost"] - certification["optimality_gap"] \
        <= 0.75 + 1e-9
