"""Shared builders for the seed-randomized property suite.

Unlike the hypothesis-driven suites elsewhere in the repo, these tests pin
stochastic inputs with the stdlib :mod:`random` module and parametrized
seeds (the DiscreteNet-style generator-testing idiom): every failure names
the exact ``(family, seed)`` pair that produced it and replays verbatim.
"""

from __future__ import annotations

import random
from typing import List

from repro.latency import (
    ConstantLatency,
    LatencyFunction,
    LinearLatency,
    MM1Latency,
    MonomialLatency,
)
from repro.network import ParallelLinkInstance

#: Latency families the invariants are checked across.
FAMILIES = ("linear", "polynomial", "mm1", "mixed")

#: Deterministic seeds; a failing case is replayed by its (family, seed).
SEEDS = tuple(range(10))


def _make_latencies(family: str, rng: random.Random, num_links: int,
                    demand: float) -> List[LatencyFunction]:
    def linear() -> LatencyFunction:
        return LinearLatency(rng.uniform(0.05, 4.0), rng.uniform(0.0, 3.0))

    def polynomial() -> LatencyFunction:
        return MonomialLatency(rng.uniform(0.1, 2.0), rng.uniform(1.0, 3.0),
                               rng.uniform(0.0, 1.0))

    def mm1() -> LatencyFunction:
        # Every capacity comfortably exceeds the total demand, so any used
        # set can carry the flow strictly inside the M/M/1 domain.
        return MM1Latency(demand + rng.uniform(0.5, 3.0))

    def constant() -> LatencyFunction:
        return ConstantLatency(rng.uniform(0.2, 3.0))

    if family == "linear":
        return [linear() for _ in range(num_links)]
    if family == "polynomial":
        return [polynomial() for _ in range(num_links)]
    if family == "mm1":
        return [mm1() for _ in range(num_links)]
    if family == "mixed":
        # At least one strictly increasing link so the water level is
        # well-defined even when constants absorb part of the demand.
        choices = (linear, polynomial, mm1, constant)
        return [linear()] + [rng.choice(choices)()
                             for _ in range(num_links - 1)]
    raise ValueError(f"unknown latency family {family!r}")


def make_instance(family: str, seed: int) -> ParallelLinkInstance:
    """A deterministic random parallel-link instance of ``family``."""
    rng = random.Random(f"{family}-{seed}")
    num_links = rng.randint(2, 7)
    demand = rng.uniform(0.2, 4.0)
    return ParallelLinkInstance(
        _make_latencies(family, rng, num_links, demand), demand)
