"""Seed-randomized invariants of the water-filling solver.

For every latency family and every pinned seed, ``water_fill`` must
produce a feasible flow (conservation + non-negativity), equalise the
per-link level — latency for the Nash kind, marginal cost for the optimum
kind — across used links while unused links sit at or above it, and react
monotonically to demand growth (Proposition 7.1).
"""

from __future__ import annotations

import numpy as np
import pytest

from families import FAMILIES, SEEDS, make_instance
from repro.equilibrium.parallel import water_fill

KINDS = ("nash", "optimum")

#: Flow below this is treated as "unused" when checking level equalisation.
USED_ATOL = 1e-7


def _level_fn(kind: str):
    if kind == "nash":
        return lambda latency, x: float(latency.value(x))
    return lambda latency, x: float(latency.marginal_cost(x))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("kind", KINDS)
def test_flow_conservation_and_nonnegativity(family, seed, kind):
    instance = make_instance(family, seed)
    flows, _ = water_fill(instance.latencies, instance.demand, kind)
    assert np.all(flows >= -1e-10), f"negative flow: {flows}"
    assert float(flows.sum()) == pytest.approx(instance.demand,
                                               rel=1e-8, abs=1e-8)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("kind", KINDS)
def test_level_equalisation_on_used_links(family, seed, kind):
    """Wardrop / KKT: used links share the level, unused links exceed it."""
    instance = make_instance(family, seed)
    flows, level = water_fill(instance.latencies, instance.demand, kind)
    fn = _level_fn(kind)
    scale = max(1.0, abs(level))
    for i, latency in enumerate(instance.latencies):
        if flows[i] > USED_ATOL:
            assert fn(latency, float(flows[i])) == pytest.approx(
                level, abs=1e-6 * scale), (
                f"used link {i} off the common level")
        else:
            assert fn(latency, 0.0) >= level - 1e-6 * scale, (
                f"unused link {i} below the common level")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("kind", KINDS)
def test_flows_monotone_in_demand(family, seed, kind):
    """Growing the demand never shrinks any link's flow (Prop. 7.1)."""
    instance = make_instance(family, seed)
    demands = [0.25 * instance.demand, 0.6 * instance.demand,
               instance.demand]
    previous = None
    for demand in demands:
        flows, _ = water_fill(instance.latencies, demand, kind)
        if previous is not None:
            assert np.all(flows >= previous - 1e-7), (
                f"a link's flow decreased when demand grew to {demand}")
        previous = flows


@pytest.mark.parametrize("seed", SEEDS[:4])
@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("kind", KINDS)
def test_backends_agree(family, seed, kind):
    """The vectorized and the scalar reference kernels match to 1e-9."""
    instance = make_instance(family, seed)
    fast, fast_level = water_fill(instance.latencies, instance.demand, kind,
                                  backend="vectorized")
    slow, slow_level = water_fill(instance.latencies, instance.demand, kind,
                                  backend="reference")
    assert np.allclose(fast, slow, atol=1e-7)
    assert fast_level == pytest.approx(slow_level, abs=1e-7)


@pytest.mark.parametrize("seed", SEEDS[:5])
@pytest.mark.parametrize("family", FAMILIES)
@pytest.mark.parametrize("kind", KINDS)
def test_water_fill_many_matches_scalar_loop(family, seed, kind):
    """The batched entry point equals one water_fill call per demand."""
    from repro.equilibrium.parallel import water_fill_many

    instance = make_instance(family, seed)
    demands = np.array([0.0, 0.3 * instance.demand, instance.demand,
                        2.5 * instance.demand])
    flows, levels = water_fill_many(instance.latencies, demands, kind)
    assert flows.shape == (demands.size, len(instance.latencies))
    for j, demand in enumerate(demands):
        scalar_flows, scalar_level = water_fill(instance.latencies,
                                                float(demand), kind)
        assert np.allclose(flows[j], scalar_flows, atol=1e-9)
        if np.isfinite(scalar_level):
            assert levels[j] == pytest.approx(scalar_level, abs=1e-9,
                                              rel=1e-9)
        else:
            assert levels[j] == scalar_level
