"""Serving-layer resilience: deadlines, injected solver faults, recovery.

Covers the end-to-end deadline contract of :meth:`SolveService.submit`
(expired-on-arrival and expired-in-queue), the chaos hooks in batch
execution, and the recovery paths that existed but had no direct tests:
``drain(timeout=)`` returning ``False``, dispatcher death healing through
``_spawn_dispatcher_locked(restart=True)``, and the shutdown join-timeout
accounting.
"""

from __future__ import annotations

import logging
import time

import pytest

from repro.api import SolveConfig
from repro.exceptions import FaultInjectedError, ServiceTimeoutError
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.instances.random_parallel import random_linear_parallel
from repro.serve import SolveService

CONFIG = SolveConfig(compute_nash=False)


def instance(seed: int = 0):
    return random_linear_parallel(3, demand=1.5, seed=seed)


def service_with(*specs, **kwargs) -> SolveService:
    injector = FaultInjector.from_plan(
        FaultPlan(name="svc", seed=5, specs=specs))
    return SolveService(fault_injector=injector, **kwargs)


class TestDeadlines:
    def test_expired_on_arrival_is_rejected_fast(self):
        with SolveService() as service:
            with pytest.raises(ServiceTimeoutError) as excinfo:
                service.submit(instance(), "optop", config=CONFIG,
                               deadline=time.monotonic() - 0.5)
            assert excinfo.value.elapsed >= 0.5
            stats = service.stats()
        assert stats.requests == 1
        assert stats.rejected == 1
        assert stats.timeouts == 1
        assert stats.consistent  # timeouts is a side counter, not a bucket

    def test_expired_in_queue_fails_with_timeout(self):
        # Batch 1 holds the dispatcher for 300 ms (injected delay); the
        # second request's 50 ms deadline expires while it waits in the
        # queue, so it must fail fast without occupying a solver batch.
        delay = FaultSpec(kind="solver_delay", nth_call=1, delay_ms=300.0)
        with service_with(delay, max_batch=1, max_wait_ms=0.5) as service:
            slow = service.submit(instance(0), "optop", config=CONFIG)
            fast = service.submit(instance(1), "optop", config=CONFIG,
                                  deadline=time.monotonic() + 0.05)
            assert slow.result(timeout=30.0) is not None
            with pytest.raises(ServiceTimeoutError):
                fast.result(timeout=30.0)
            stats = service.stats()
        assert stats.timeouts == 1
        assert stats.batch_failures == 0  # no solver work was lost
        assert stats.consistent

    def test_generous_deadline_solves_normally(self):
        with SolveService() as service:
            report = service.submit(
                instance(), "optop", config=CONFIG,
                deadline=time.monotonic() + 60.0).result(timeout=30.0)
            assert report.strategy == "optop"
            assert service.stats().timeouts == 0


class TestSolverFaultHooks:
    def test_solver_crash_fails_the_batch_futures_typed(self):
        crash = FaultSpec(kind="solver_crash", nth_call=1)
        with service_with(crash) as service:
            future = service.submit(instance(0), "optop", config=CONFIG)
            with pytest.raises(FaultInjectedError):
                future.result(timeout=30.0)
            # The fault fired once; the service keeps serving afterwards.
            report = service.submit(instance(1), "optop",
                                    config=CONFIG).result(timeout=30.0)
            assert report is not None
            stats = service.stats()
        assert stats.batch_failures == 1
        assert stats.consistent

    def test_unfaulted_service_has_no_injector(self):
        with SolveService() as service:
            assert service._faults is None
            report = service.submit(instance(), "optop",
                                    config=CONFIG).result(timeout=30.0)
            assert report is not None


class TestRecoveryPaths:
    def test_drain_timeout_returns_false_then_completes(self):
        delay = FaultSpec(kind="solver_delay", nth_call=1, delay_ms=400.0)
        with service_with(delay) as service:
            future = service.submit(instance(), "optop", config=CONFIG)
            assert service.drain(timeout=0.05) is False
            assert future.result(timeout=30.0) is not None
            assert service.drain(timeout=10.0) is True

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_dead_dispatcher_respawns_on_next_submit(self):
        service = SolveService()
        service.start()
        thread = service._thread
        assert thread.is_alive()

        # Kill the dispatcher the hard way: a BaseException out of the
        # queue escapes the loop's Exception containment.
        class _Bomb:
            def get(self, timeout=None):
                raise SystemExit("injected dispatcher death")

        real_queue = service._queue
        service._queue = _Bomb()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        service._queue = real_queue

        try:
            report = service.submit(instance(), "optop",
                                    config=CONFIG).result(timeout=30.0)
            assert report is not None
            stats = service.stats()
            assert stats.worker_restarts == 1
            assert service._thread is not thread
            assert service.running
        finally:
            service.shutdown(wait=True, timeout=30.0)

    def test_shutdown_join_timeout_is_counted_and_logged(self, caplog):
        service = SolveService()
        service.start()
        service.drain(timeout=10.0)

        class _StuckThread:
            def is_alive(self):
                return True

            def join(self, timeout=None):
                pass  # simulates a dispatcher held hostage by a solver

        service._thread = _StuckThread()
        with caplog.at_level(logging.WARNING, logger="repro.serve.service"):
            service.shutdown(wait=False)
        assert service.stats().shutdown_timeouts == 1
        assert any("shutdown join" in record.message
                   for record in caplog.records)
