"""Store-side fault hooks: ENOSPC, torn writes, corrupted artifacts."""

from __future__ import annotations

import errno
import json

import pytest

from repro.api import SolveConfig, solve
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.instances import pigou
from repro.study import ArtifactStore, artifact_key


@pytest.fixture()
def report():
    return solve(pigou(), "optop", config=SolveConfig(cache=False))


def _store(tmp_path, *specs) -> ArtifactStore:
    injector = FaultInjector(FaultPlan(name="disk", seed=3, specs=specs))
    return ArtifactStore(tmp_path / "store", fault_injector=injector)


KEY = artifact_key("digest", "optop", SolveConfig())


def test_enospc_raises_oserror(tmp_path, report):
    store = _store(tmp_path, FaultSpec(kind="store_enospc", nth_call=1))
    with pytest.raises(OSError) as excinfo:
        store.put(KEY, report)
    assert excinfo.value.errno == errno.ENOSPC
    # The failed write left nothing behind; the next put succeeds.
    assert store.get(KEY) is None
    store.put(KEY, report)
    assert store.get(KEY) == report


def test_torn_write_is_quarantined_on_read(tmp_path, report):
    store = _store(tmp_path, FaultSpec(kind="store_torn_write", nth_call=1))
    path = store.put(KEY, report)
    # The file exists but holds only half the envelope bytes.
    text = path.read_text(encoding="utf-8")
    with pytest.raises(json.JSONDecodeError):
        json.loads(text)
    assert store.get(KEY) is None
    stats = store.stats()
    assert stats["corrupt"] == 1 and stats["misses"] == 1
    assert [p.name for p in store.quarantined()] == \
        [f"{path.name}.corrupt.0"]
    # Write-through repair: the second (un-faulted) put serves again.
    store.put(KEY, report)
    assert store.get(KEY) == report


def test_corrupted_artifact_fails_checksum(tmp_path, report):
    store = _store(tmp_path,
                   FaultSpec(kind="store_corrupt_artifact", nth_call=1))
    path = store.put(KEY, report)
    # The envelope's checksum was computed over the TRUE payload before
    # the injected byte-flip, so the damage cannot verify as authentic.
    assert store.get(KEY) is None
    assert store.stats()["corrupt"] == 1
    assert not path.exists()
    assert len(list(store.quarantined())) == 1


def test_unfaulted_store_unaffected(tmp_path, report):
    store = ArtifactStore(tmp_path / "store")
    assert store._faults is None
    store.put(KEY, report)
    assert store.get(KEY) == report
    assert store.stats()["corrupt"] == 0
