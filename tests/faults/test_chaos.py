"""End-to-end chaos harness: the smoke plan must hold the contract.

These spin up a real multi-process cluster under fault injection, so
they live in the slow lane alongside the cluster lifecycle tests.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.faults import run_chaos

pytestmark = pytest.mark.slow


class TestRunChaos:
    def test_smoke_plan_holds_degradation_contract(self, tmp_path):
        report = run_chaos("smoke", steps=50, n_workers=2, seed=0,
                           store_dir=tmp_path / "store")
        assert report.violations == []
        assert report.passed
        # Every request resolved: either a correct report or a typed error.
        assert report.ok + report.failed == report.steps == 50
        # The SIGKILLed worker came back and the store survived the damage.
        assert report.respawns >= 1
        assert report.quarantined >= 1
        # Merged stats still partition exactly under chaos.
        assert report.merged.get("consistent") is True
        # The warm sweep after the storm hits cache (respawned workers
        # reattach to the shared store, so reheat is immediate).
        assert report.warm_sweep_hits > 0

    def test_report_serialises_and_summarises(self, tmp_path):
        report = run_chaos("bad_disk", steps=10, n_workers=1, seed=1,
                           store_dir=tmp_path / "store")
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["plan"] == "bad_disk"
        assert payload["steps"] == 10
        assert "PASS" in report.summary() or "FAIL" in report.summary()


class TestChaosCli:
    def test_chaos_run_smoke_json(self, tmp_path, capsys):
        exit_code = main([
            "chaos", "run", "--plan", "smoke", "--steps", "50",
            "--workers", "2", "--seed", "0", "--expect-respawn",
            "--store", str(tmp_path / "store"), "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert payload["failures"] == []
        assert payload["ok"] + payload["failed"] == 50
        assert payload["respawns"] >= 1
        assert payload["quarantined"] >= 1
