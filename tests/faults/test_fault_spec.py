"""FaultSpec/FaultPlan: validation, JSON round-trips, plan loading."""

from __future__ import annotations

import pytest

from repro.exceptions import ModelError
from repro.faults import (
    FAULT_KINDS,
    PROCESS_FATAL_KINDS,
    FaultPlan,
    FaultSpec,
    named_plans,
)


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError, match="unknown fault kind"):
            FaultSpec(kind="meteor_strike", nth_call=1)

    def test_nth_call_must_be_positive(self):
        with pytest.raises(ModelError, match="nth_call"):
            FaultSpec(kind="solver_crash", nth_call=0)

    def test_probability_bounds(self):
        with pytest.raises(ModelError, match="probability"):
            FaultSpec(kind="conn_drop", probability=1.5)
        with pytest.raises(ModelError, match="probability"):
            FaultSpec(kind="conn_drop", probability=-0.1)

    def test_spec_must_be_able_to_trigger(self):
        with pytest.raises(ModelError, match="can never trigger"):
            FaultSpec(kind="solver_crash")

    def test_negative_delay_rejected(self):
        with pytest.raises(ModelError, match="delay_ms"):
            FaultSpec(kind="solver_delay", nth_call=1, delay_ms=-1.0)

    def test_every_kind_constructs(self):
        for kind in FAULT_KINDS:
            assert FaultSpec(kind=kind, nth_call=3).kind == kind


class TestPlanRoundTrip:
    def plan(self) -> FaultPlan:
        return FaultPlan(name="trip", seed=99, specs=(
            FaultSpec(kind="worker_sigkill", nth_call=5),
            FaultSpec(kind="store_corrupt_artifact", probability=0.25,
                      seed=7, max_triggers=3),
            FaultSpec(kind="solver_delay", probability=0.5, delay_ms=12.5),
        ))

    def test_json_round_trip_is_lossless(self):
        plan = self.plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_dict_round_trip_is_lossless(self):
        plan = self.plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_kinds_sorted_distinct(self):
        assert self.plan().kinds() == [
            "solver_delay", "store_corrupt_artifact", "worker_sigkill"]

    def test_without_strips_fatal_kinds(self):
        stripped = self.plan().without(PROCESS_FATAL_KINDS)
        assert "worker_sigkill" not in stripped.kinds()
        assert len(stripped) == 2
        assert stripped.seed == 99 and stripped.name == "trip"

    def test_malformed_json_raises_model_error(self):
        with pytest.raises(ModelError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(ModelError, match="malformed fault spec"):
            FaultPlan.from_dict({"specs": [{"kind": "conn_drop",
                                           "nth_call": "many"}]})


class TestPlanLoading:
    def test_load_builtin_name(self):
        plan = FaultPlan.load("smoke")
        assert plan.name == "smoke"
        assert "worker_sigkill" in plan.kinds()

    def test_load_inline_json(self):
        original = named_plans()["bad_disk"]
        assert FaultPlan.load(original.to_json()) == original

    def test_load_file_path(self, tmp_path):
        original = named_plans()["slow_solver"]
        path = tmp_path / "plan.json"
        path.write_text(original.to_json(indent=2), encoding="utf-8")
        assert FaultPlan.load(path) == original

    def test_load_unknown_name_lists_builtins(self):
        with pytest.raises(ModelError, match="smoke"):
            FaultPlan.load("no-such-plan")

    def test_named_plans_are_valid_and_fresh(self):
        plans = named_plans()
        assert {"smoke", "slow_solver", "bad_disk"} <= set(plans)
        for plan in plans.values():
            assert FaultPlan.from_json(plan.to_json()) == plan
