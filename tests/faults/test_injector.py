"""FaultInjector: deterministic triggers, bounds, zero-overhead default."""

from __future__ import annotations

import pytest

from repro.exceptions import FaultInjectedError, ServiceError
from repro.faults import FaultInjector, FaultPlan, FaultSpec


def _drops(plan: FaultPlan, calls: int) -> list:
    injector = FaultInjector(plan)
    return [injector.draw("conn_drop") is not None for _ in range(calls)]


class TestTriggers:
    def test_nth_call_fires_exactly_once(self):
        plan = FaultPlan(seed=1, specs=(
            FaultSpec(kind="conn_drop", nth_call=3),))
        fired = _drops(plan, 10)
        assert fired == [False, False, True] + [False] * 7

    def test_probability_is_deterministic_per_plan(self):
        plan = FaultPlan(seed=42, specs=(
            FaultSpec(kind="conn_drop", probability=0.3),))
        first = _drops(plan, 200)
        second = _drops(plan, 200)
        assert first == second
        assert any(first) and not all(first)

    def test_plan_seed_changes_the_sequence(self):
        base = FaultSpec(kind="conn_drop", probability=0.3)
        a = _drops(FaultPlan(seed=1, specs=(base,)), 200)
        b = _drops(FaultPlan(seed=2, specs=(base,)), 200)
        assert a != b

    def test_max_triggers_bounds_firing(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(kind="conn_drop", probability=1.0, max_triggers=2),))
        assert _drops(plan, 10) == [True, True] + [False] * 8

    def test_sites_count_independently(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(kind="conn_drop", nth_call=2),
            FaultSpec(kind="worker_sigkill", nth_call=2)))
        injector = FaultInjector(plan)
        assert injector.draw("conn_drop") is None
        assert injector.draw("worker_sigkill") is None
        assert injector.draw("conn_drop") is not None
        assert injector.draw("worker_sigkill") is not None


class TestZeroOverheadDefault:
    def test_from_plan_none_is_none(self):
        assert FaultInjector.from_plan(None) is None

    def test_from_plan_empty_is_none(self):
        assert FaultInjector.from_plan(FaultPlan(name="empty")) is None

    def test_from_plan_nonempty_arms(self):
        plan = FaultPlan(specs=(FaultSpec(kind="conn_drop", nth_call=1),))
        assert isinstance(FaultInjector.from_plan(plan), FaultInjector)


class TestSolverFaults:
    def test_solver_crash_raises_typed_error(self):
        injector = FaultInjector(FaultPlan(name="boom", specs=(
            FaultSpec(kind="solver_crash", nth_call=1),)))
        with pytest.raises(FaultInjectedError, match="boom") as excinfo:
            injector.raise_solver_faults()
        assert isinstance(excinfo.value, ServiceError)
        injector.raise_solver_faults()  # fired once; second call is clean

    def test_solver_delay_sleeps_then_returns(self):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(kind="solver_delay", nth_call=1, delay_ms=1.0),)))
        injector.raise_solver_faults()  # must not raise
        assert injector.stats() == {"solver_delay": 1}


class TestAccounting:
    def test_stats_counts_only_fired_kinds(self):
        injector = FaultInjector(FaultPlan(seed=0, specs=(
            FaultSpec(kind="conn_drop", probability=1.0, max_triggers=3),
            FaultSpec(kind="worker_sigkill", nth_call=100))))
        for _ in range(5):
            injector.draw("conn_drop")
            injector.draw("worker_sigkill")
        assert injector.stats() == {"conn_drop": 3}
        assert injector.total_injected() == 3
