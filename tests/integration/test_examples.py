"""The example scripts must run end to end (they are part of the deliverable)."""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"


def test_examples_exist():
    assert len(EXAMPLE_SCRIPTS) >= 3
    assert (EXAMPLES_DIR / "quickstart.py") in EXAMPLE_SCRIPTS
