"""End-to-end integration tests across modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    a_posteriori_ratio,
    aloof,
    llf,
    mop,
    optimal_restricted_strategy,
    optop,
    price_of_anarchy,
    price_of_optimum,
    scale,
)
from repro.instances import (
    figure_4_example,
    pigou,
    random_affine_common_slope,
    random_linear_parallel,
    roughgarden_example,
)
from repro.network import parallel_network_as_graph


class TestFullPipelineOnParallelLinks:
    """PoA -> beta -> strategies -> induced costs, all consistent."""

    @pytest.mark.parametrize("seed", range(3))
    def test_strategy_hierarchy(self, seed):
        """Optimal <= LLF <= Aloof cost-wise, and OpTop closes the gap fully."""
        instance = random_linear_parallel(5, demand=2.0, seed=seed)
        result = optop(instance)
        alpha = result.beta
        optimum_cost = result.optimum_cost

        aloof_cost = aloof(instance).induce(instance).cost
        llf_cost = llf(instance, alpha).induce(instance).cost
        scale_cost = scale(instance, alpha).induce(instance).cost
        optop_cost = result.induced_cost

        assert optop_cost == pytest.approx(optimum_cost, rel=1e-7)
        assert llf_cost <= aloof_cost + 1e-9
        assert scale_cost <= aloof_cost + 1e-9
        assert optop_cost <= llf_cost + 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_poa_and_ratio_consistency(self, seed):
        instance = random_linear_parallel(5, demand=2.0, seed=seed)
        poa = price_of_anarchy(instance)
        assert a_posteriori_ratio(instance, aloof(instance)) == pytest.approx(
            poa, rel=1e-9)
        result = optop(instance)
        assert a_posteriori_ratio(instance, result.strategy) == pytest.approx(
            1.0, abs=1e-6)

    def test_theorem_2_4_interpolates_between_nash_and_optimum(self):
        instance = random_affine_common_slope(4, demand=2.0, seed=5)
        result = optop(instance)
        costs = [optimal_restricted_strategy(instance, f * result.beta).cost
                 for f in (0.0, 0.5, 1.0)]
        assert costs[0] == pytest.approx(result.nash_cost, rel=1e-7)
        assert costs[2] == pytest.approx(result.optimum_cost, rel=1e-6)
        assert costs[2] <= costs[1] <= costs[0] + 1e-9


class TestParallelAndNetworkViewsAgree:
    """The same physical system must give the same answers in both models."""

    @pytest.mark.parametrize("builder", [pigou, figure_4_example])
    def test_price_of_anarchy_agrees(self, builder):
        parallel_instance = builder()
        network_instance = parallel_network_as_graph(parallel_instance)
        assert price_of_anarchy(network_instance) == pytest.approx(
            price_of_anarchy(parallel_instance), rel=1e-4)

    @pytest.mark.parametrize("builder", [pigou, figure_4_example])
    def test_price_of_optimum_agrees(self, builder):
        parallel_instance = builder()
        network_instance = parallel_network_as_graph(parallel_instance)
        beta_links = price_of_optimum(parallel_instance).beta
        beta_graph = price_of_optimum(network_instance).beta
        assert beta_graph == pytest.approx(beta_links, abs=1e-5)

    @pytest.mark.parametrize("seed", range(2))
    def test_random_instances_agree(self, seed):
        parallel_instance = random_linear_parallel(4, demand=1.5, seed=seed)
        network_instance = parallel_network_as_graph(parallel_instance)
        beta_links = optop(parallel_instance).beta
        network_result = mop(network_instance)
        assert network_result.beta == pytest.approx(beta_links, abs=1e-4)
        assert network_result.induced_cost == pytest.approx(
            optop(parallel_instance).optimum_cost, rel=1e-5)


class TestStackelbergGuaranteesOnNetworks:
    def test_roughgarden_graph_full_pipeline(self):
        instance = roughgarden_example()
        result = mop(instance, compute_nash=True)
        # Selfish routing is strictly worse, MOP restores the optimum, and the
        # Leader's share is about one half.
        assert result.nash.cost > result.optimum_cost
        assert result.induced_cost == pytest.approx(result.optimum_cost, rel=1e-6)
        assert result.beta == pytest.approx(0.5, abs=1e-4)
        assert result.strategy.alpha == pytest.approx(result.beta, abs=1e-9)

    def test_scale_on_network_never_hurts(self):
        instance = roughgarden_example()
        from repro.equilibrium import network_nash
        nash_cost = network_nash(instance).cost
        for alpha in (0.3, 0.7, 1.0):
            strategy = scale(instance, alpha)
            assert strategy.induce(instance).cost <= nash_cost * (1.0 + 1e-6)
