"""Fast structural checks of the example scripts.

The examples are part of the deliverable *and* of the documentation: every
script needs a module docstring (rendered into the docs gallery) and a
gallery entry in ``docs/examples.md``.  The actual end-to-end smoke runs
live in ``tests/test_examples.py`` under the slow marker.
"""

from __future__ import annotations

import ast
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))
GALLERY = REPO / "docs" / "examples.md"


def test_examples_exist():
    assert len(EXAMPLE_SCRIPTS) >= 3
    assert (EXAMPLES_DIR / "quickstart.py") in EXAMPLE_SCRIPTS
    assert (EXAMPLES_DIR / "elastic_demand.py") in EXAMPLE_SCRIPTS


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_has_a_docstring_and_run_instructions(script):
    module = ast.parse(script.read_text(encoding="utf-8"))
    docstring = ast.get_docstring(module)
    assert docstring, f"{script.name} has no module docstring"
    assert len(docstring.splitlines()) >= 3, (
        f"{script.name}: the docstring is the gallery text; one line is "
        f"not documentation")
    assert "Run with" in docstring, (
        f"{script.name}: docstring should include run instructions")


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_is_in_the_gallery(script):
    assert script.name in GALLERY.read_text(encoding="utf-8"), (
        f"{script.name} is missing from docs/examples.md")
