"""Unit tests for the MILP-certified exact baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SolveConfig, solve
from repro.baselines.exact import exact_strategy
from repro.equilibrium import parallel_nash, parallel_optimum
from repro.exceptions import StrategyError
from repro.instances import (
    braess_paradox,
    figure_4_example,
    mixed_family_soup,
    pigou,
)

ALPHA = 0.5


class TestValidation:
    def test_alpha_out_of_range(self):
        with pytest.raises(StrategyError):
            exact_strategy(pigou(), -0.1)
        with pytest.raises(StrategyError):
            exact_strategy(pigou(), 1.1)

    def test_num_segments_positive(self):
        with pytest.raises(StrategyError):
            exact_strategy(pigou(), 0.5, num_segments=0)


class TestCertificate:
    def test_certification_fields(self):
        result = exact_strategy(pigou(), ALPHA)
        cert = result.certification
        for key in ("lower_bound", "certified_cost", "optimality_gap",
                    "selected_candidate", "candidate_costs", "alpha",
                    "linearisation_error", "milp_success"):
            assert key in cert
        assert cert["alpha"] == ALPHA
        assert cert["lower_bound"] <= cert["certified_cost"] + 1e-12
        assert cert["optimality_gap"] == pytest.approx(
            max(0.0, cert["certified_cost"] - cert["lower_bound"]))
        assert cert["selected_candidate"] in cert["candidate_costs"]

    def test_outcome_matches_certified_cost(self):
        result = exact_strategy(figure_4_example(), ALPHA)
        assert result.outcome.cost == pytest.approx(
            result.certification["certified_cost"])

    def test_leader_budget_respected(self):
        instance = figure_4_example()
        result = exact_strategy(instance, ALPHA)
        leader = np.asarray(result.strategy.flows, dtype=float)
        assert leader.sum() <= ALPHA * instance.demand + 1e-9
        assert (leader >= -1e-12).all()

    def test_certificate_is_json_serialisable(self):
        import json

        cert = exact_strategy(mixed_family_soup(5, seed=0), ALPHA
                              ).certification
        json.dumps(cert)  # must not raise


class TestOptimality:
    def test_alpha_zero_matches_nash(self):
        instance = figure_4_example()
        result = exact_strategy(instance, 0.0)
        nash = parallel_nash(instance)
        assert result.outcome.cost == pytest.approx(nash.cost, rel=1e-9)

    def test_alpha_one_matches_optimum(self):
        instance = figure_4_example()
        result = exact_strategy(instance, 1.0)
        optimum = parallel_optimum(instance)
        assert result.outcome.cost == pytest.approx(optimum.cost, rel=1e-6)
        assert result.certification["lower_bound"] <= optimum.cost + 1e-9

    def test_pigou_closed_form(self):
        # At alpha = 0.5 the leader saturates the constant link and the
        # followers fill the linear one: the social optimum, cost 3/4.
        result = exact_strategy(pigou(), 0.5)
        assert result.outcome.cost == pytest.approx(0.75, abs=1e-9)
        assert result.certification["lower_bound"] <= 0.75 + 1e-9

    def test_never_worse_than_budgeted_heuristics(self):
        instance = mixed_family_soup(6, demand=1.5, seed=3)
        result = exact_strategy(instance, ALPHA)
        for heuristic in ("llf", "scale", "aloof"):
            rival = solve(instance, heuristic,
                          config=SolveConfig(alpha=ALPHA))
            # exact's candidate set contains the heuristic itself.
            assert result.outcome.cost <= rival.induced_cost + 1e-6

    def test_tighter_grid_does_not_loosen_certificate(self):
        instance = mixed_family_soup(5, demand=1.0, seed=0)
        coarse = exact_strategy(instance, ALPHA, num_segments=8)
        fine = exact_strategy(instance, ALPHA, num_segments=128)
        assert fine.certification["optimality_gap"] <= \
            coarse.certification["optimality_gap"] + 1e-9


class TestStrategyAdapter:
    def test_parallel_report_carries_certification(self):
        report = solve(pigou(), "exact", config=SolveConfig(alpha=ALPHA))
        cert = report.metadata["certification"]
        assert report.metadata["algorithm"] == "exact"
        assert cert["lower_bound"] <= report.induced_cost + 1e-12

    def test_network_fallback_is_certified_brute_force(self):
        report = solve(braess_paradox(), "exact",
                       config=SolveConfig(alpha=ALPHA,
                                          brute_force_resolution=5))
        cert = report.metadata["certification"]
        assert cert["method"] == "network_brute_force"
        assert cert["lower_bound"] <= report.induced_cost + 1e-9
        assert cert["optimality_gap"] >= 0.0
