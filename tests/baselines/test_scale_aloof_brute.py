"""Tests for the SCALE, Aloof and brute-force baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import StrategyError
from repro.baselines import aloof, brute_force_strategy, enumerate_strategies, scale
from repro.core import optop
from repro.equilibrium import network_nash, parallel_nash, parallel_optimum
from repro.instances import pigou, random_linear_parallel, roughgarden_example


class TestScale:
    def test_parallel_scale_flows(self, pigou_instance):
        strategy = scale(pigou_instance, 0.5)
        optimum = parallel_optimum(pigou_instance)
        assert strategy.flows == pytest.approx(0.5 * optimum.flows, abs=1e-9)

    def test_network_scale_flows(self, roughgarden_instance):
        strategy = scale(roughgarden_instance, 0.4)
        assert strategy.alpha == pytest.approx(0.4)
        assert strategy.edge_flows.sum() > 0.0

    def test_alpha_out_of_range(self, pigou_instance):
        with pytest.raises(StrategyError):
            scale(pigou_instance, 1.5)

    def test_unsupported_type_rejected(self):
        with pytest.raises(StrategyError):
            scale("not-an-instance", 0.5)

    @pytest.mark.parametrize("seed", range(3))
    def test_scale_never_hurts(self, seed):
        instance = random_linear_parallel(5, demand=2.0, seed=seed)
        nash_cost = parallel_nash(instance).cost
        for alpha in (0.3, 0.6, 1.0):
            assert scale(instance, alpha).induce(instance).cost <= nash_cost + 1e-9

    def test_scale_at_one_is_full_optimum(self, pigou_instance):
        strategy = scale(pigou_instance, 1.0)
        outcome = strategy.induce(pigou_instance)
        assert outcome.cost == pytest.approx(0.75, abs=1e-9)


class TestAloof:
    def test_parallel_aloof_is_nash(self, pigou_instance):
        outcome = aloof(pigou_instance).induce(pigou_instance)
        assert outcome.cost == pytest.approx(parallel_nash(pigou_instance).cost)

    def test_network_aloof_is_nash(self, roughgarden_instance):
        outcome = aloof(roughgarden_instance).induce(roughgarden_instance)
        assert outcome.cost == pytest.approx(
            network_nash(roughgarden_instance).cost, rel=1e-5)

    def test_aloof_controls_nothing(self, pigou_instance):
        assert aloof(pigou_instance).controlled_flow == 0.0

    def test_unsupported_type_rejected(self):
        with pytest.raises(StrategyError):
            aloof(3.14)


class TestBruteForce:
    def test_enumeration_count(self, pigou_instance):
        strategies = list(enumerate_strategies(pigou_instance, 0.5, resolution=4))
        assert len(strategies) == 5  # compositions of 4 into 2 parts

    def test_enumeration_budget(self, pigou_instance):
        for flows in enumerate_strategies(pigou_instance, 0.5, resolution=4):
            assert flows.sum() == pytest.approx(0.5, abs=1e-12)
            assert np.all(flows >= 0.0)

    def test_invalid_resolution_rejected(self, pigou_instance):
        with pytest.raises(StrategyError):
            list(enumerate_strategies(pigou_instance, 0.5, resolution=0))

    def test_brute_force_on_pigou_finds_optimum_at_half(self, pigou_instance):
        result = brute_force_strategy(pigou_instance, 0.5, resolution=10)
        assert result.cost == pytest.approx(0.75, abs=1e-9)
        assert result.strategy.flows == pytest.approx([0.0, 0.5], abs=1e-9)

    def test_brute_force_below_beta_cannot_reach_optimum(self, pigou_instance):
        result = brute_force_strategy(pigou_instance, 0.3, resolution=10)
        assert result.cost > 0.75 + 1e-6

    def test_evaluated_count_reported(self, pigou_instance):
        result = brute_force_strategy(pigou_instance, 0.5, resolution=6)
        assert result.evaluated == 7

    def test_brute_force_matches_optop_quality_at_beta(self):
        instance = random_linear_parallel(3, demand=1.0, seed=4)
        full = optop(instance)
        brute = brute_force_strategy(instance, full.beta, resolution=20)
        # The grid strategy can only be as good as the true optimum cost.
        assert brute.cost >= full.optimum_cost - 1e-9
