"""Tests for the LLF (Largest Latency First) baseline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import StrategyError
from repro.baselines import llf
from repro.core import optop
from repro.equilibrium import parallel_optimum, parallel_nash
from repro.instances import pigou, random_linear_parallel, random_polynomial_parallel


class TestLLFConstruction:
    def test_alpha_out_of_range_rejected(self, pigou_instance):
        with pytest.raises(StrategyError):
            llf(pigou_instance, 1.2)
        with pytest.raises(StrategyError):
            llf(pigou_instance, -0.2)

    def test_budget_respected(self, random_linear_instance):
        strategy = llf(random_linear_instance, 0.4)
        assert strategy.controlled_flow == pytest.approx(
            0.4 * random_linear_instance.demand, abs=1e-9)

    def test_alpha_zero_is_null_strategy(self, random_linear_instance):
        strategy = llf(random_linear_instance, 0.0)
        assert strategy.controlled_flow == 0.0

    def test_alpha_one_plays_full_optimum(self, random_linear_instance):
        strategy = llf(random_linear_instance, 1.0)
        optimum = parallel_optimum(random_linear_instance)
        assert strategy.flows == pytest.approx(optimum.flows, abs=1e-8)

    def test_fills_largest_latency_links_first(self, pigou_instance):
        # On Pigou the optimum latencies are l1(1/2)=1/2 and l2(1/2)=1, so LLF
        # loads the constant link first.
        strategy = llf(pigou_instance, 0.5)
        assert strategy.flows == pytest.approx([0.0, 0.5], abs=1e-9)

    def test_partial_fill_of_last_link(self, pigou_instance):
        strategy = llf(pigou_instance, 0.25)
        assert strategy.flows == pytest.approx([0.0, 0.25], abs=1e-9)

    def test_never_exceeds_optimum_per_link(self, random_linear_instance):
        optimum = parallel_optimum(random_linear_instance)
        for alpha in (0.2, 0.5, 0.9):
            strategy = llf(random_linear_instance, alpha)
            assert np.all(strategy.flows <= optimum.flows + 1e-9)


class TestLLFGuarantees:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=30),
           st.floats(min_value=0.15, max_value=1.0))
    def test_one_over_alpha_bound(self, seed, alpha):
        """Roughgarden: C(S+T) <= (1/alpha) C(O)."""
        instance = random_polynomial_parallel(5, demand=2.0, seed=seed)
        strategy = llf(instance, alpha)
        cost = strategy.induce(instance).cost
        optimum_cost = parallel_optimum(instance).cost
        assert cost <= optimum_cost / alpha * (1.0 + 1e-6)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=30),
           st.floats(min_value=0.0, max_value=1.0))
    def test_linear_bound(self, seed, alpha):
        """Roughgarden: C(S+T) <= 4/(3+alpha) C(O) for linear latencies."""
        instance = random_linear_parallel(5, demand=2.0, seed=seed)
        strategy = llf(instance, alpha)
        cost = strategy.induce(instance).cost
        optimum_cost = parallel_optimum(instance).cost
        assert cost <= optimum_cost * 4.0 / (3.0 + alpha) * (1.0 + 1e-6)

    @pytest.mark.parametrize("seed", range(3))
    def test_llf_never_worse_than_doing_nothing(self, seed):
        instance = random_linear_parallel(5, demand=2.0, seed=seed)
        nash_cost = parallel_nash(instance).cost
        for alpha in (0.25, 0.5, 0.75):
            assert llf(instance, alpha).induce(instance).cost <= nash_cost + 1e-9

    def test_llf_at_pigou_beta_reaches_optimum(self, pigou_instance):
        strategy = llf(pigou_instance, 0.5)
        assert strategy.induce(pigou_instance).cost == pytest.approx(0.75, abs=1e-9)

    @pytest.mark.parametrize("seed", range(3))
    def test_llf_not_better_than_optop_at_beta(self, seed):
        """OpTop's strategy is optimal at alpha = beta; LLF can only match it."""
        instance = random_linear_parallel(5, demand=2.0, seed=seed)
        result = optop(instance)
        llf_cost = llf(instance, result.beta).induce(instance).cost
        assert llf_cost >= result.optimum_cost - 1e-9
