"""The `repro serve bench` CLI front-end and the bench driver."""

from __future__ import annotations

import json

import pytest

from repro.api import clear_cache
from repro.cli import main
from repro.exceptions import ModelError
from repro.serve import build_workload, run_bench
from repro.study.store import ArtifactStore


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestWorkload:
    def test_workload_is_deterministic(self):
        a_instances, a_schedule = build_workload(num_requests=100,
                                                 num_distinct=20, seed=5)
        b_instances, b_schedule = build_workload(num_requests=100,
                                                 num_distinct=20, seed=5)
        assert a_schedule == b_schedule
        assert len(a_instances) == len(b_instances) == 20

    def test_workload_touches_every_instance(self):
        _, schedule = build_workload(num_requests=80, num_distinct=30,
                                     seed=1)
        assert set(schedule) == set(range(30))

    def test_workload_rejects_uncoverable_streams(self):
        with pytest.raises(ModelError):
            build_workload(num_requests=5, num_distinct=10)


class TestRunBench:
    def test_second_pass_is_all_hits(self, tmp_path):
        result = run_bench(num_requests=150, num_distinct=25, passes=2,
                           store=ArtifactStore(tmp_path / "store"),
                           max_wait_ms=1.0, seed=3)
        assert len(result.passes) == 2
        warm = result.passes[1].stats
        assert warm.hits == 150
        assert warm.batches == 0
        assert all(p.stats.consistent for p in result.passes)
        assert result.final_stats.requests == 300


class TestCli:
    def test_serve_bench_prints_table(self, capsys):
        code = main(["serve", "bench", "--requests", "120", "--distinct",
                     "20", "--passes", "2", "--max-wait-ms", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SolveService synthetic benchmark" in out
        assert "tier-1 hits" in out
        assert "totals:" in out

    def test_serve_bench_json_roundtrips(self, capsys, tmp_path):
        code = main(["serve", "bench", "--requests", "60", "--distinct",
                     "12", "--passes", "1", "--max-wait-ms", "1",
                     "--store", str(tmp_path / "store"), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["final_stats"]["requests"] == 60
        assert payload["passes"][0]["stats"]["consistent"] is True
