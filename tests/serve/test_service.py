"""Unit tests for `SolveService`: coalescing, batching, backpressure,
tiered caching, failure containment and lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import SolveConfig, clear_cache, solve_many
from repro.exceptions import ServiceClosedError, ServiceOverloadedError
from repro.instances import pigou, random_linear_parallel
from repro.serve import SolveService, TieredCache
from repro.study.store import ArtifactStore

QUICK = SolveConfig(compute_nash=False)


@pytest.fixture(autouse=True)
def fresh_session_cache():
    clear_cache()
    yield
    clear_cache()


class CountingSolver:
    """A solve_many wrapper counting batch calls and solved instances."""

    def __init__(self, inner=solve_many, delay: float = 0.0):
        self.inner = inner
        self.delay = delay
        self.calls = 0
        self.instances = 0
        self._lock = threading.Lock()

    def __call__(self, instances, strategy=None, *, config=None,
                 max_workers=None, cache=None):
        with self._lock:
            self.calls += 1
            self.instances += len(list(instances))
        if self.delay:
            time.sleep(self.delay)
        return self.inner(instances, strategy, config=config,
                          max_workers=max_workers)


class FailingSolver:
    """Raises for the first ``failures`` batches, then delegates."""

    def __init__(self, failures: int = 1):
        self.failures = failures
        self.calls = 0

    def __call__(self, instances, strategy=None, *, config=None,
                 max_workers=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError("synthetic solver crash")
        return solve_many(instances, strategy, config=config,
                          max_workers=max_workers)


class TestBasicServing:
    def test_submit_returns_a_report_future(self):
        with SolveService(max_wait_ms=1.0) as service:
            report = service.submit(pigou(), "optop").result(timeout=30)
        assert report.beta == pytest.approx(0.5)

    def test_blocking_solve_wrapper(self):
        with SolveService(max_wait_ms=1.0) as service:
            report = service.solve(pigou(), "optop", timeout=30)
        assert report.strategy == "optop"

    def test_repeat_submission_is_a_tier1_hit(self):
        with SolveService(max_wait_ms=1.0) as service:
            instance = pigou()
            service.solve(instance, "optop", config=QUICK, timeout=30)
            service.solve(instance, "optop", config=QUICK, timeout=30)
            stats = service.stats()
        assert stats.tier1_hits == 1
        assert stats.enqueued == 1
        assert stats.consistent

    def test_unknown_strategy_fails_fast(self):
        from repro.exceptions import StrategyError

        with SolveService(max_wait_ms=1.0) as service:
            with pytest.raises(StrategyError):
                service.submit(pigou(), "no_such_strategy")


class TestCoalescing:
    def test_concurrent_identical_requests_solve_once(self):
        solver = CountingSolver(delay=0.05)
        instance = random_linear_parallel(4, demand=2.0, seed=1)
        with SolveService(max_wait_ms=20.0, solver=solver) as service:
            futures = [service.submit(instance, "optop", config=QUICK)
                       for _ in range(25)]
            reports = [f.result(timeout=30) for f in futures]
            stats = service.stats()
        assert solver.instances == 1, "identical requests must coalesce"
        assert stats.coalesced == 24
        assert stats.enqueued == 1
        assert stats.consistent
        assert len({r.beta for r in reports}) == 1

    def test_distinct_requests_share_one_batch(self):
        solver = CountingSolver()
        instances = [random_linear_parallel(3, demand=1.0, seed=s)
                     for s in range(10)]
        with SolveService(max_batch=32, max_wait_ms=50.0,
                          solver=solver) as service:
            futures = [service.submit(inst, "optop", config=QUICK)
                       for inst in instances]
            for future in futures:
                future.result(timeout=30)
            stats = service.stats()
        assert solver.calls < len(instances), \
            "micro-batching must need fewer solve_many calls than requests"
        assert stats.batched_requests == len(instances)
        assert stats.consistent

    def test_mixed_strategies_group_into_separate_batches(self):
        solver = CountingSolver()
        instance = random_linear_parallel(4, demand=1.5, seed=2)
        with SolveService(max_batch=32, max_wait_ms=50.0,
                          solver=solver) as service:
            a = service.submit(instance, "optop", config=QUICK)
            b = service.submit(instance, "aloof", config=QUICK)
            a.result(timeout=30), b.result(timeout=30)
        assert solver.calls == 2, "one solve_many per (strategy, config)"


class TestBackpressure:
    def test_full_queue_rejects_with_overload_error(self):
        release = threading.Event()

        def blocking_solver(instances, strategy=None, *, config=None,
                            max_workers=None):
            release.wait(timeout=30)
            return solve_many(instances, strategy, config=config,
                              max_workers=max_workers)

        service = SolveService(max_queue=2, max_batch=1, max_wait_ms=0.0,
                               solver=blocking_solver).start()
        try:
            futures = []
            # First request is picked up by the dispatcher (and blocks);
            # then fill the bounded queue to the brim.
            futures.append(service.submit(
                random_linear_parallel(3, demand=1.0, seed=0), "optop",
                config=QUICK))
            time.sleep(0.1)
            rejected = 0
            seed = 1
            while rejected == 0 and seed < 50:
                try:
                    futures.append(service.submit(
                        random_linear_parallel(3, demand=1.0, seed=seed),
                        "optop", config=QUICK))
                except ServiceOverloadedError:
                    rejected += 1
                seed += 1
            assert rejected == 1
            stats = service.stats()
            assert stats.rejected == 1
            assert stats.consistent
        finally:
            release.set()
            service.shutdown(wait=True, timeout=30)


class TestTieredCache:
    def test_store_backed_restart_serves_tier2(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        instance = random_linear_parallel(4, demand=2.0, seed=3)

        with SolveService(store=store, max_wait_ms=1.0) as warm:
            first = warm.solve(instance, "optop", config=QUICK, timeout=30)
        assert store.stats()["writes"] == 1

        solver = CountingSolver()
        clear_cache()  # the session cache must not mask the tiers
        with SolveService(store=ArtifactStore(tmp_path / "artifacts"),
                          max_wait_ms=1.0, solver=solver) as cold:
            second = cold.solve(instance, "optop", config=QUICK, timeout=30)
            third = cold.solve(instance, "optop", config=QUICK, timeout=30)
            stats = cold.stats()
        assert solver.calls == 0, "restart must re-warm from the store"
        assert stats.tier2_hits == 1, "first lookup promotes from disk"
        assert stats.tier1_hits == 1, "second lookup hits memory"
        assert second.beta == pytest.approx(first.beta)
        assert third.beta == pytest.approx(first.beta)

    def test_write_through_lands_in_both_tiers(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        cache = TieredCache(store=store)
        with SolveService(cache=cache, max_wait_ms=1.0) as service:
            service.solve(pigou(), "optop", config=QUICK, timeout=30)
        assert len(cache.memory) == 1
        assert len(store) == 1

    def test_cache_disabled_requests_bypass_the_tiers(self):
        solver = CountingSolver()
        nocache = SolveConfig(cache=False, compute_nash=False)
        instance = random_linear_parallel(3, demand=1.0, seed=4)
        with SolveService(max_wait_ms=1.0, solver=solver) as service:
            service.solve(instance, "optop", config=nocache, timeout=30)
            service.solve(instance, "optop", config=nocache, timeout=30)
            stats = service.stats()
        assert solver.instances == 2
        assert stats.hits == 0 and stats.enqueued == 2
        assert stats.consistent

    def test_corrupt_tier2_artifact_is_healed_not_fatal(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        instance = random_linear_parallel(4, demand=2.0, seed=11)
        with SolveService(store=store, max_wait_ms=1.0) as warm:
            first = warm.solve(instance, "optop", config=QUICK, timeout=30)
        # Corrupt the artifact on disk.
        artifact = next(iter(store.root.glob("??/*.json")))
        artifact.write_text("{not json", encoding="utf-8")

        clear_cache()
        with SolveService(store=ArtifactStore(tmp_path / "artifacts"),
                          max_wait_ms=1.0) as cold:
            healed = cold.solve(instance, "optop", config=QUICK, timeout=30)
            stats = cold.stats()
        assert healed.beta == pytest.approx(first.beta)
        assert stats.consistent, stats.to_dict()
        assert stats.enqueued == 1, "corrupt artifact must be a miss"
        # The store quarantined the damaged file (renamed aside) ...
        assert stats.cache["store"]["corrupt"] == 1
        quarantined = list((tmp_path / "artifacts").glob("??/*.corrupt.*"))
        assert len(quarantined) == 1
        # ... and the write-through landed a fresh, verifiable artifact.
        import json as _json

        from repro.api.report import SolveReport

        envelope = _json.loads(artifact.read_text(encoding="utf-8"))
        SolveReport.from_dict(envelope["report"])

    def test_service_traffic_leaves_the_global_cache_alone(self):
        from repro.api import cache_stats

        before = cache_stats()
        with SolveService(max_wait_ms=1.0) as service:
            for seed in range(4):
                inst = random_linear_parallel(3, demand=1.0, seed=seed)
                service.solve(inst, "optop", config=QUICK, timeout=30)
                service.solve(inst, "optop", config=QUICK, timeout=30)
        assert cache_stats() == before, \
            "serve traffic must not skew repro.api.cache_stats()"

    def test_per_tier_counters_are_consistent(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        with SolveService(store=store, max_wait_ms=1.0) as service:
            for seed in range(5):
                inst = random_linear_parallel(3, demand=1.0, seed=seed)
                service.solve(inst, "optop", config=QUICK, timeout=30)
                service.solve(inst, "optop", config=QUICK, timeout=30)
            cache_stats = service.stats().cache
        assert (cache_stats["memory_hits"] + cache_stats["store_hits"]
                + cache_stats["misses"]) == cache_stats["lookups"]

    def test_counters_are_monotone_under_concurrent_lookups(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        cache = TieredCache(store=store)
        config = QUICK
        with SolveService(cache=cache, max_wait_ms=1.0) as service:
            instance = random_linear_parallel(3, demand=1.0, seed=9)
            service.solve(instance, "optop", config=config, timeout=30)

            snapshots = []
            stop = threading.Event()

            def reader():
                while not stop.is_set():
                    snapshots.append(cache.stats())

            watcher = threading.Thread(target=reader)
            watcher.start()
            try:
                threads = [
                    threading.Thread(target=lambda: [
                        service.solve(instance, "optop", config=config,
                                      timeout=30) for _ in range(20)])
                    for _ in range(4)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
            finally:
                stop.set()
                watcher.join()
            snapshots.append(cache.stats())
        # Every counter observed by the concurrent reader is monotone
        # non-decreasing, and lookups never runs ahead of its buckets.
        for name in ("lookups", "memory_hits", "store_hits", "misses",
                     "puts", "store_errors"):
            values = [snap[name] for snap in snapshots]
            assert values == sorted(values), name
        for snap in snapshots:
            assert snap["lookups"] == (snap["memory_hits"]
                                       + snap["store_hits"] + snap["misses"])

    def test_reset_zeroes_counters_but_keeps_the_warmth(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts")
        cache = TieredCache(store=store)
        solver = CountingSolver()
        instance = random_linear_parallel(4, demand=2.0, seed=5)
        with SolveService(cache=cache, max_wait_ms=1.0,
                          solver=solver) as service:
            service.solve(instance, "optop", config=QUICK, timeout=30)
            service.solve(instance, "optop", config=QUICK, timeout=30)
            assert cache.stats()["lookups"] > 0

            cache.reset()  # the bench seam: clean counters, warm entries

            counters = cache.stats()
            assert counters["lookups"] == 0
            assert counters["memory_hits"] == 0
            assert counters["memory"]["hits"] == 0
            assert counters["store"]["hits"] == 0
            before_calls = solver.calls
            service.solve(instance, "optop", config=QUICK, timeout=30)
            after = cache.stats()
        assert solver.calls == before_calls, "reset must not drop entries"
        assert after["memory_hits"] == 1
        assert after["lookups"] == 1
        assert len(cache.memory) == 1 and len(store) == 1


class TestFailureContainment:
    def test_failed_write_through_still_serves_the_report(self, tmp_path):
        """Disk-full persistence must degrade, not hang the futures."""

        class BrokenStore(ArtifactStore):
            def put(self, key, report):
                raise OSError("disk full")

        store = BrokenStore(tmp_path / "artifacts")
        instance = random_linear_parallel(3, demand=1.0, seed=21)
        with SolveService(store=store, max_wait_ms=1.0) as service:
            report = service.solve(instance, "optop", config=QUICK,
                                   timeout=30)
            again = service.solve(instance, "optop", config=QUICK,
                                  timeout=30)
            stats = service.stats()
        assert report.beta is not None
        assert stats.cache_put_failures == 1
        assert stats.tier1_hits == 1, \
            "tier 1 is written before the failing tier-2 put"
        assert again.beta == pytest.approx(report.beta)
        assert stats.pending == 0 and stats.consistent

    def test_reregistered_strategy_is_not_served_stale(self, tmp_path):
        from repro.api import REGISTRY, register_strategy, solve

        instance = random_linear_parallel(3, demand=1.0, seed=22)
        store = ArtifactStore(tmp_path / "artifacts")

        @register_strategy("serve_versioned_stub")
        def v1(inst, config):
            return solve(inst, "aloof",
                         config=SolveConfig(cache=False, compute_nash=False))

        try:
            with SolveService(store=store, max_wait_ms=1.0) as service:
                first = service.solve(instance, "serve_versioned_stub",
                                      config=QUICK, timeout=30)
                assert first.strategy == "aloof"
        finally:
            REGISTRY.unregister("serve_versioned_stub")

        @register_strategy("serve_versioned_stub")
        def v2(inst, config):
            return solve(inst, "optop",
                         config=SolveConfig(cache=False, compute_nash=False))

        try:
            with SolveService(store=store, max_wait_ms=1.0) as service:
                second = service.solve(instance, "serve_versioned_stub",
                                       config=QUICK, timeout=30)
                stats = service.stats()
            assert second.strategy == "optop", \
                "tier caches must not replay the old implementation"
            assert stats.tier2_hits == 0, \
                "the store must be bypassed for re-registered names"
        finally:
            REGISTRY.unregister("serve_versioned_stub")

    def test_failed_batch_fails_only_its_futures(self):
        solver = FailingSolver(failures=1)
        a = random_linear_parallel(3, demand=1.0, seed=5)
        b = random_linear_parallel(3, demand=1.0, seed=6)
        with SolveService(max_wait_ms=1.0, solver=solver) as service:
            first = service.submit(a, "optop", config=QUICK)
            with pytest.raises(RuntimeError, match="synthetic solver crash"):
                first.result(timeout=30)
            # The service survives and keeps serving.
            second = service.submit(b, "optop", config=QUICK)
            assert second.result(timeout=30).beta is not None
            stats = service.stats()
        assert stats.batch_failures == 1
        assert stats.consistent

    def test_coalesced_futures_share_the_failure(self):
        solver = FailingSolver(failures=1)
        instance = random_linear_parallel(3, demand=1.0, seed=7)
        with SolveService(max_wait_ms=30.0, solver=solver) as service:
            futures = [service.submit(instance, "optop", config=QUICK)
                       for _ in range(5)]
            failures = 0
            for future in futures:
                with pytest.raises(RuntimeError):
                    future.result(timeout=30)
                failures += 1
        assert failures == 5


class TestLifecycle:
    def test_drain_waits_for_all_pending(self):
        with SolveService(max_wait_ms=1.0) as service:
            futures = [service.submit(
                random_linear_parallel(3, demand=1.0, seed=s), "optop",
                config=QUICK) for s in range(6)]
            assert service.drain(timeout=60)
            assert all(f.done() for f in futures)
            assert service.stats().pending == 0

    def test_submit_after_shutdown_raises(self):
        service = SolveService(max_wait_ms=1.0).start()
        service.shutdown(wait=True, timeout=30)
        with pytest.raises(ServiceClosedError):
            service.submit(pigou(), "optop")

    def test_hard_shutdown_fails_pending_futures(self):
        release = threading.Event()

        def stuck_solver(instances, strategy=None, *, config=None,
                         max_workers=None):
            release.wait(timeout=30)
            return solve_many(instances, strategy, config=config,
                              max_workers=max_workers)

        service = SolveService(max_wait_ms=0.0, max_batch=1,
                               solver=stuck_solver).start()
        blocked = service.submit(random_linear_parallel(3, demand=1.0,
                                                        seed=8),
                                 "optop", config=QUICK)
        time.sleep(0.05)
        queued = service.submit(random_linear_parallel(3, demand=1.0,
                                                       seed=9),
                                "optop", config=QUICK)
        service.shutdown(wait=False)
        release.set()
        with pytest.raises(ServiceClosedError):
            queued.result(timeout=30)
        # The in-flight request either finished or was failed; both are
        # legal, but the future must settle.
        assert blocked.done() or blocked.exception(timeout=30) is not None

    def test_context_manager_drains_on_clean_exit(self):
        with SolveService(max_wait_ms=1.0) as service:
            future = service.submit(pigou(), "optop", config=QUICK)
        assert future.done() and future.exception() is None

    def test_stats_snapshot_is_a_dataclass_with_dict_view(self):
        with SolveService(max_wait_ms=1.0) as service:
            service.solve(pigou(), "optop", config=QUICK, timeout=30)
            data = service.stats().to_dict()
        assert data["requests"] == 1
        assert data["consistent"] is True
        assert "cache" in data
