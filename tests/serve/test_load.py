"""Load test: 5,000+ mixed requests through one `SolveService`.

The acceptance contract of the serving layer:

* 5,000 mixed solve requests drawn from <= 200 distinct instances complete
  without an error;
* coalescing + micro-batching need measurably fewer ``solve_many`` batch
  calls than requests;
* a second identical pass is >= 95% tier-1/tier-2 cache hits with ZERO
  solver invocations;
* a store-backed cold restart also needs zero solver invocations (tier 2);
* every counter in :class:`~repro.serve.ServiceStats` stays exactly
  consistent (each request in exactly one bucket, per-tier hits+misses ==
  lookups).
"""

from __future__ import annotations

import threading

import pytest

from repro.api import SolveConfig, clear_cache, solve_many
from repro.instances import random_linear_parallel
from repro.serve import SolveService, build_workload
from repro.study.store import ArtifactStore

NUM_REQUESTS = 5000
NUM_DISTINCT = 200
NUM_THREADS = 8

QUICK = SolveConfig(compute_nash=False)


class CountingSolver:
    """solve_many wrapper counting batches and solver-visited instances."""

    def __init__(self):
        self.calls = 0
        self.instances = 0
        self._lock = threading.Lock()

    def __call__(self, instances, strategy=None, *, config=None,
                 max_workers=None):
        batch = list(instances)
        with self._lock:
            self.calls += 1
            self.instances += len(batch)
        return solve_many(batch, strategy, config=config,
                          max_workers=max_workers)


def _submit_stream(service, instances, schedule, *, threads=NUM_THREADS):
    """Submit the whole schedule from several threads; returns the reports."""
    futures = [None] * len(schedule)
    errors = []

    def worker(offset: int) -> None:
        try:
            for i in range(offset, len(schedule), threads):
                futures[i] = service.submit(instances[schedule[i]], "optop",
                                            config=QUICK)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    pool = [threading.Thread(target=worker, args=(t,))
            for t in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    assert not errors, f"submission raised: {errors!r}"
    return [future.result(timeout=300) for future in futures]


@pytest.mark.slow
def test_five_thousand_mixed_requests_with_cache_and_coalescing(tmp_path):
    clear_cache()
    solver = CountingSolver()
    store = ArtifactStore(tmp_path / "artifacts")
    instances, schedule = build_workload(
        num_requests=NUM_REQUESTS, num_distinct=NUM_DISTINCT, num_links=3,
        seed=42)
    assert len(instances) == NUM_DISTINCT
    assert len(schedule) == NUM_REQUESTS

    service = SolveService(store=store, max_batch=128, max_wait_ms=2.0,
                           max_queue=0, max_workers=0, solver=solver).start()
    try:
        # ---------------- pass 1: cold ---------------------------------- #
        reports = _submit_stream(service, instances, schedule)
        assert len(reports) == NUM_REQUESTS
        assert all(r.beta is not None for r in reports)

        stats1 = service.stats()
        assert stats1.consistent, stats1.to_dict()
        assert stats1.requests == NUM_REQUESTS
        # The solver saw each distinct instance exactly once...
        assert solver.instances == NUM_DISTINCT
        # ... and coalescing/micro-batching squeezed those into far fewer
        # batch calls than there were requests.
        assert solver.calls < NUM_REQUESTS / 10
        assert stats1.batches == solver.calls
        assert stats1.enqueued == NUM_DISTINCT
        assert (stats1.tier1_hits + stats1.tier2_hits + stats1.coalesced
                == NUM_REQUESTS - NUM_DISTINCT)

        # ---------------- pass 2: warm ----------------------------------- #
        calls_before = solver.calls
        reports2 = _submit_stream(service, instances, schedule)
        assert len(reports2) == NUM_REQUESTS

        stats2 = service.stats()
        assert solver.calls == calls_before, \
            "second pass must make zero solver invocations"
        pass2_hits = (stats2.tier1_hits + stats2.tier2_hits
                      - stats1.tier1_hits - stats1.tier2_hits)
        assert pass2_hits >= 0.95 * NUM_REQUESTS, (
            f"only {pass2_hits}/{NUM_REQUESTS} warm requests were cache "
            f"hits")
        assert stats2.consistent, stats2.to_dict()

        # Exact per-tier accounting of the tiered cache.
        cache_stats = stats2.cache
        assert (cache_stats["memory_hits"] + cache_stats["store_hits"]
                + cache_stats["misses"]) == cache_stats["lookups"]
        # Every keyed submission probes tier 1 exactly once (requests that
        # coalesce onto an in-flight solve stop there, so they appear in
        # the LRU probe count but not as completed tiered lookups).
        memory = cache_stats["memory"]
        assert memory["hits"] + memory["misses"] == stats2.requests
        assert stats2.rejected == 0 and stats2.batch_failures == 0
    finally:
        service.shutdown(wait=True, timeout=120)

    # ---------------- pass 3: cold restart from the store ---------------- #
    clear_cache()  # the session-layer cache must not mask tier 2
    restart_solver = CountingSolver()
    with SolveService(store=ArtifactStore(tmp_path / "artifacts"),
                      max_wait_ms=2.0, max_workers=0,
                      solver=restart_solver) as restarted:
        sample = schedule[:1000]
        reports3 = _submit_stream(restarted, instances, sample, threads=4)
        assert len(reports3) == 1000
        stats3 = restarted.stats()
    assert restart_solver.calls == 0, \
        "a store-backed restart must re-warm without solver work"
    assert stats3.tier2_hits >= 1
    # Requests racing an in-progress tier-2 probe for their key coalesce
    # onto it instead of probing again; either way nothing is re-solved.
    assert stats3.hits + stats3.coalesced == 1000
    assert stats3.hits >= 0.95 * 1000
    assert stats3.consistent, stats3.to_dict()


@pytest.mark.slow
def test_sustained_backpressure_never_loses_accounting():
    """A tiny queue under a hot stream: rejections + hits still partition."""
    clear_cache()
    service = SolveService(max_queue=4, max_batch=4, max_wait_ms=0.5,
                           max_workers=0).start()
    instances = [random_linear_parallel(3, demand=1.0, seed=s)
                 for s in range(50)]
    accepted, rejected = [], 0
    try:
        from repro.exceptions import ServiceOverloadedError

        for i in range(600):
            try:
                accepted.append(service.submit(instances[i % 50], "optop",
                                               config=QUICK))
            except ServiceOverloadedError:
                rejected += 1
        for future in accepted:
            future.result(timeout=120)
        stats = service.stats()
    finally:
        service.shutdown(wait=True, timeout=60)
    assert stats.requests == 600
    assert stats.rejected == rejected
    assert stats.consistent, stats.to_dict()
