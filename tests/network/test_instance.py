"""Tests for Commodity and NetworkInstance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InfeasibleFlowError, ModelError
from repro.latency import LinearLatency
from repro.network import Commodity, Network, NetworkInstance


@pytest.fixture
def two_path_network():
    net = Network()
    net.add_edge("s", "a", LinearLatency(1.0, 0.0))   # 0
    net.add_edge("a", "t", LinearLatency(1.0, 0.0))   # 1
    net.add_edge("s", "b", LinearLatency(2.0, 0.0))   # 2
    net.add_edge("b", "t", LinearLatency(2.0, 0.0))   # 3
    return net


@pytest.fixture
def single_instance(two_path_network):
    return NetworkInstance.single_commodity(two_path_network, "s", "t", 1.0)


@pytest.fixture
def multi_instance(two_path_network):
    return NetworkInstance(two_path_network, [
        Commodity("s", "t", 1.0),
        Commodity("a", "t", 0.5),
    ])


class TestCommodity:
    def test_valid(self):
        com = Commodity("s", "t", 2.0)
        assert com.demand == 2.0

    def test_same_endpoints_rejected(self):
        with pytest.raises(ModelError):
            Commodity("s", "s", 1.0)

    def test_non_positive_demand_rejected(self):
        with pytest.raises(ModelError):
            Commodity("s", "t", 0.0)


class TestNetworkInstance:
    def test_single_commodity_properties(self, single_instance):
        assert single_instance.is_single_commodity
        assert single_instance.source == "s"
        assert single_instance.sink == "t"
        assert single_instance.total_demand == 1.0

    def test_multi_commodity_properties(self, multi_instance):
        assert not multi_instance.is_single_commodity
        assert multi_instance.num_commodities == 2
        assert multi_instance.total_demand == pytest.approx(1.5)

    def test_source_on_multi_commodity_raises(self, multi_instance):
        with pytest.raises(ModelError):
            _ = multi_instance.source

    def test_missing_node_rejected(self, two_path_network):
        with pytest.raises(ModelError):
            NetworkInstance.single_commodity(two_path_network, "s", "zzz", 1.0)

    def test_no_commodities_rejected(self, two_path_network):
        with pytest.raises(ModelError):
            NetworkInstance(two_path_network, [])

    def test_cost_delegates_to_network(self, single_instance):
        flows = np.array([1.0, 1.0, 0.0, 0.0])
        assert single_instance.cost(flows) == pytest.approx(2.0)
        assert single_instance.beckmann(flows) == pytest.approx(1.0)


class TestFlowConservation:
    def test_feasible_aggregate_flow(self, single_instance):
        flows = np.array([0.6, 0.6, 0.4, 0.4])
        single_instance.check_flow_conservation(flows)

    def test_infeasible_aggregate_flow(self, single_instance):
        flows = np.array([0.6, 0.5, 0.4, 0.4])
        with pytest.raises(InfeasibleFlowError):
            single_instance.check_flow_conservation(flows)

    def test_per_commodity_check(self, multi_instance):
        flows_c1 = np.array([0.5, 0.5, 0.5, 0.5])
        flows_c2 = np.array([0.0, 0.5, 0.0, 0.0])
        total = flows_c1 + flows_c2
        multi_instance.check_flow_conservation(total, [flows_c1, flows_c2])

    def test_per_commodity_mismatch(self, multi_instance):
        flows_c1 = np.array([0.5, 0.5, 0.5, 0.5])
        flows_c2 = np.array([0.5, 0.0, 0.0, 0.0])  # violates conservation at 'a'
        with pytest.raises(InfeasibleFlowError):
            multi_instance.check_flow_conservation(flows_c1 + flows_c2,
                                                   [flows_c1, flows_c2])

    def test_wrong_number_of_commodity_vectors(self, multi_instance):
        with pytest.raises(InfeasibleFlowError):
            multi_instance.check_flow_conservation(np.zeros(4), [np.zeros(4)])


class TestDerivedInstances:
    def test_with_demands(self, multi_instance):
        updated = multi_instance.with_demands([2.0, 1.0])
        assert updated.total_demand == pytest.approx(3.0)

    def test_with_demands_drops_zero_commodities(self, multi_instance):
        updated = multi_instance.with_demands([2.0, 0.0])
        assert updated.num_commodities == 1

    def test_with_demands_all_zero_rejected(self, multi_instance):
        with pytest.raises(ModelError):
            multi_instance.with_demands([0.0, 0.0])

    def test_with_demands_wrong_length(self, multi_instance):
        with pytest.raises(ModelError):
            multi_instance.with_demands([1.0])

    def test_shifted_instance(self, single_instance):
        strategy = np.array([0.5, 0.5, 0.0, 0.0])
        shifted = single_instance.shifted(strategy, [0.5])
        assert shifted.total_demand == pytest.approx(0.5)
        assert float(shifted.network.edge(0).latency.value(0.0)) == pytest.approx(0.5)

    def test_shifted_with_full_control_keeps_token_commodity(self, single_instance):
        strategy = np.array([1.0, 1.0, 0.0, 0.0])
        shifted = single_instance.shifted(strategy, [0.0])
        assert shifted.num_commodities == 1
        assert shifted.total_demand <= 1e-9
