"""Tests for the Network edge-indexed graph model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.latency import ConstantLatency, LinearLatency
from repro.network import Edge, Network


@pytest.fixture
def diamond():
    """A 4-node diamond network s -> {v, w} -> t."""
    net = Network()
    net.add_edge("s", "v", LinearLatency(1.0, 0.0))
    net.add_edge("s", "w", ConstantLatency(1.0))
    net.add_edge("v", "t", ConstantLatency(1.0))
    net.add_edge("w", "t", LinearLatency(1.0, 0.0))
    return net


class TestConstruction:
    def test_counts(self, diamond):
        assert diamond.num_nodes == 4
        assert diamond.num_edges == 4

    def test_edge_ordering_is_insertion_order(self, diamond):
        assert diamond.edge(0).endpoints == ("s", "v")
        assert diamond.edge(3).endpoints == ("w", "t")

    def test_out_and_in_edges(self, diamond):
        assert set(diamond.out_edges("s")) == {0, 1}
        assert set(diamond.in_edges("t")) == {2, 3}
        assert diamond.out_edges("t") == ()

    def test_parallel_edges_get_distinct_keys(self):
        net = Network()
        first = net.add_edge("a", "b", LinearLatency(1.0))
        second = net.add_edge("a", "b", LinearLatency(2.0))
        assert first != second
        assert net.edge(first).key == 0
        assert net.edge(second).key == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ModelError):
            Edge("a", "a", LinearLatency(1.0))

    def test_non_latency_rejected(self):
        with pytest.raises(ModelError):
            Edge("a", "b", 3.0)

    def test_add_node_idempotent(self, diamond):
        diamond.add_node("s")
        assert diamond.num_nodes == 4

    def test_has_node(self, diamond):
        assert diamond.has_node("v")
        assert not diamond.has_node("zzz")

    def test_construct_from_edges_iterable(self):
        edges = [Edge("a", "b", LinearLatency(1.0)), Edge("b", "c", LinearLatency(2.0))]
        net = Network(edges)
        assert net.num_edges == 2


class TestFunctionals:
    def test_latencies_at(self, diamond):
        flows = np.array([0.5, 0.2, 0.2, 0.5])
        assert np.allclose(diamond.latencies_at(flows), [0.5, 1.0, 1.0, 0.5])

    def test_marginal_costs_at(self, diamond):
        flows = np.array([0.5, 0.2, 0.2, 0.5])
        assert np.allclose(diamond.marginal_costs_at(flows), [1.0, 1.0, 1.0, 1.0])

    def test_cost(self, diamond):
        flows = np.array([0.5, 0.5, 0.5, 0.5])
        expected = 0.5 * 0.5 + 0.5 * 1.0 + 0.5 * 1.0 + 0.5 * 0.5
        assert diamond.cost(flows) == pytest.approx(expected)

    def test_beckmann(self, diamond):
        flows = np.array([1.0, 0.0, 0.0, 1.0])
        assert diamond.beckmann(flows) == pytest.approx(1.0)

    def test_path_latency(self, diamond):
        flows = np.array([0.5, 0.0, 0.0, 0.0])
        assert diamond.path_latency([0, 2], flows) == pytest.approx(0.5 + 1.0)

    def test_validate_edge_flows_shape(self, diamond):
        with pytest.raises(ModelError):
            diamond.validate_edge_flows(np.zeros(3))

    def test_validate_edge_flows_negative(self, diamond):
        with pytest.raises(ModelError):
            diamond.validate_edge_flows(np.array([-1.0, 0.0, 0.0, 0.0]))


class TestConversions:
    def test_shifted_network_values(self, diamond):
        shifted = diamond.shifted(np.array([0.5, 0.0, 0.0, 0.0]))
        assert float(shifted.edge(0).latency.value(0.0)) == pytest.approx(0.5)
        assert shifted.num_edges == diamond.num_edges

    def test_shifted_preserves_node_set(self, diamond):
        shifted = diamond.shifted(np.zeros(4))
        assert set(shifted.nodes) == set(diamond.nodes)

    def test_to_networkx(self, diamond):
        graph = diamond.to_networkx(edge_flows=np.ones(4), capacities=np.ones(4))
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 4
        _, _, data = next(iter(graph.edges(data=True)))
        assert "flow" in data and "capacity" in data and "index" in data
