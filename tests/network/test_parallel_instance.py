"""Tests for ParallelLinkInstance."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InfeasibleFlowError, ModelError
from repro.latency import ConstantLatency, LinearLatency, MM1Latency
from repro.network import ParallelLinkInstance


@pytest.fixture
def instance():
    return ParallelLinkInstance(
        [LinearLatency(1.0, 0.0), LinearLatency(2.0, 0.5), ConstantLatency(1.0)],
        demand=2.0)


class TestConstruction:
    def test_basic_properties(self, instance):
        assert instance.num_links == 3
        assert len(instance) == 3
        assert instance.demand == 2.0
        assert instance.has_constant_links

    def test_default_names_follow_paper(self, instance):
        assert instance.names == ("M1", "M2", "M3")

    def test_custom_names(self):
        inst = ParallelLinkInstance([LinearLatency(1.0)], 1.0, names=["fast"])
        assert inst.names == ("fast",)

    def test_wrong_number_of_names_rejected(self):
        with pytest.raises(ModelError):
            ParallelLinkInstance([LinearLatency(1.0)], 1.0, names=["a", "b"])

    def test_empty_link_list_rejected(self):
        with pytest.raises(ModelError):
            ParallelLinkInstance([], 1.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ModelError):
            ParallelLinkInstance([LinearLatency(1.0)], -1.0)

    def test_non_latency_rejected(self):
        with pytest.raises(ModelError):
            ParallelLinkInstance([lambda x: x], 1.0)

    def test_demand_above_mm1_capacity_rejected(self):
        with pytest.raises(ModelError):
            ParallelLinkInstance([MM1Latency(1.0), MM1Latency(1.0)], 2.5)

    def test_zero_demand_allowed(self):
        inst = ParallelLinkInstance([LinearLatency(1.0)], 0.0)
        assert inst.demand == 0.0


class TestFunctionals:
    def test_cost(self, instance):
        flows = np.array([1.0, 0.5, 0.5])
        expected = 1.0 * 1.0 + 0.5 * (2 * 0.5 + 0.5) + 0.5 * 1.0
        assert instance.cost(flows) == pytest.approx(expected)

    def test_latencies_at(self, instance):
        lat = instance.latencies_at(np.array([1.0, 0.5, 0.5]))
        assert np.allclose(lat, [1.0, 1.5, 1.0])

    def test_marginal_costs_at(self, instance):
        marg = instance.marginal_costs_at(np.array([1.0, 0.5, 0.5]))
        assert np.allclose(marg, [2.0, 2.5, 1.0])

    def test_beckmann(self, instance):
        flows = np.array([1.0, 1.0, 0.0])
        expected = 0.5 + (1.0 + 0.5) + 0.0
        assert instance.beckmann(flows) == pytest.approx(expected)

    def test_cost_of_zero_flow_is_zero(self, instance):
        assert instance.cost(np.zeros(3)) == 0.0


class TestValidation:
    def test_validate_accepts_feasible_flow(self, instance):
        flows = instance.validate_flow([1.0, 0.5, 0.5])
        assert isinstance(flows, np.ndarray)

    def test_validate_rejects_wrong_length(self, instance):
        with pytest.raises(InfeasibleFlowError):
            instance.validate_flow([1.0, 1.0])

    def test_validate_rejects_negative(self, instance):
        with pytest.raises(InfeasibleFlowError):
            instance.validate_flow([2.5, -0.5, 0.0])

    def test_validate_rejects_wrong_total(self, instance):
        with pytest.raises(InfeasibleFlowError):
            instance.validate_flow([1.0, 0.0, 0.0])

    def test_validate_with_custom_demand(self, instance):
        flows = instance.validate_flow([0.5, 0.25, 0.25], demand=1.0)
        assert flows.sum() == pytest.approx(1.0)

    def test_tiny_negative_clipped(self, instance):
        flows = instance.validate_flow([2.0 + 1e-9, -1e-9, 0.0])
        assert np.all(flows >= 0.0)


class TestDerivedInstances:
    def test_with_demand(self, instance):
        smaller = instance.with_demand(1.0)
        assert smaller.demand == 1.0
        assert smaller.num_links == instance.num_links

    def test_sub_instance(self, instance):
        sub = instance.sub_instance([0, 2], 1.0)
        assert sub.num_links == 2
        assert sub.names == ("M1", "M3")
        assert sub.demand == 1.0

    def test_sub_instance_empty_rejected(self, instance):
        with pytest.raises(ModelError):
            instance.sub_instance([], 1.0)

    def test_shifted_reduces_demand(self, instance):
        shifted = instance.shifted(np.array([0.5, 0.0, 0.5]))
        assert shifted.demand == pytest.approx(1.0)

    def test_shifted_latency_values(self, instance):
        shifted = instance.shifted(np.array([0.5, 0.0, 0.0]))
        assert float(shifted.latencies[0].value(0.0)) == pytest.approx(0.5)

    def test_shifted_rejects_excess_strategy(self, instance):
        with pytest.raises(ModelError):
            instance.shifted(np.array([2.0, 1.0, 0.0]))

    def test_shifted_rejects_negative_strategy(self, instance):
        with pytest.raises(ModelError):
            instance.shifted(np.array([-0.5, 0.0, 0.0]))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=0.5), min_size=3, max_size=3))
    def test_shifted_cost_identity(self, strategy):
        """Cost of combined flow equals shifted-instance cost plus cross terms.

        Specifically C_original(s + t) should equal the cost computed link by
        link with the shifted latencies evaluated at t.
        """
        instance = ParallelLinkInstance(
            [LinearLatency(1.0, 0.0), LinearLatency(2.0, 0.5), ConstantLatency(1.0)],
            demand=2.0)
        strategy_arr = np.asarray(strategy)
        shifted = instance.shifted(strategy_arr)
        followers = np.full(3, shifted.demand / 3.0)
        combined_cost = instance.cost(strategy_arr + followers)
        manual = sum((s + t) * float(lat.value(s + t))
                     for lat, s, t in zip(instance.latencies, strategy_arr, followers))
        assert combined_cost == pytest.approx(manual)
