"""Tests for convenience constructors."""

from __future__ import annotations

import pytest

from repro.latency import LinearLatency
from repro.network import (
    network_from_edge_list,
    parallel_links_from_coefficients,
    parallel_network_as_graph,
)
from repro.equilibrium import network_nash, parallel_nash


class TestParallelLinksFromCoefficients:
    def test_builds_expected_latencies(self):
        inst = parallel_links_from_coefficients([(1.0, 0.0), (0.0, 1.0)], demand=1.0)
        assert inst.num_links == 2
        assert float(inst.latencies[0].value(2.0)) == pytest.approx(2.0)
        assert float(inst.latencies[1].value(2.0)) == pytest.approx(1.0)


class TestNetworkFromEdgeList:
    def test_builds_network(self):
        net = network_from_edge_list([
            ("s", "a", LinearLatency(1.0)),
            ("a", "t", LinearLatency(1.0)),
        ])
        assert net.num_edges == 2
        assert net.has_node("a")


class TestParallelNetworkAsGraph:
    def test_embedding_preserves_equilibrium_cost(self):
        """The parallel-link Nash and the network Nash must agree."""
        inst = parallel_links_from_coefficients([(1.0, 0.0), (0.5, 0.5)], demand=1.5)
        embedded = parallel_network_as_graph(inst)
        parallel_cost = parallel_nash(inst).cost
        network_cost = network_nash(embedded).cost
        assert network_cost == pytest.approx(parallel_cost, rel=1e-5)

    def test_embedding_counts(self):
        inst = parallel_links_from_coefficients([(1.0, 0.0)] * 4, demand=1.0)
        embedded = parallel_network_as_graph(inst)
        assert embedded.network.num_edges == 4
        assert embedded.network.num_nodes == 2
        assert embedded.total_demand == 1.0
