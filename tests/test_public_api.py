"""Tests of the top-level public API surface."""

from __future__ import annotations

import inspect

import pytest

import repro
from repro import exceptions


class TestPublicSurface:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"

    def test_core_entry_points_are_callables(self):
        for name in ("optop", "mop", "price_of_optimum", "parallel_nash",
                     "parallel_optimum", "network_nash", "network_optimum",
                     "llf", "scale", "aloof", "price_of_anarchy"):
            assert callable(getattr(repro, name))

    def test_public_callables_have_docstrings(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"undocumented public callables: {undocumented}"

    def test_public_classes_have_docstrings(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, f"undocumented public classes: {undocumented}"

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.baselines
        import repro.cli
        import repro.core
        import repro.equilibrium
        import repro.instances
        import repro.latency
        import repro.metrics
        import repro.network
        import repro.paths
        import repro.serialization
        import repro.utils


class TestExceptionHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in ("ModelError", "LatencyDomainError", "InfeasibleFlowError",
                     "ConvergenceError", "StrategyError", "InstanceError"):
            assert issubclass(getattr(exceptions, name), exceptions.ReproError)

    def test_domain_error_is_a_model_error(self):
        assert issubclass(exceptions.LatencyDomainError, exceptions.ModelError)

    def test_convergence_error_carries_diagnostics(self):
        err = exceptions.ConvergenceError("no luck", iterations=7, residual=0.5)
        assert err.iterations == 7
        assert err.residual == 0.5

    def test_catching_the_base_class_catches_everything(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.StrategyError("bad strategy")
