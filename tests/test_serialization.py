"""Tests for JSON (de)serialisation of latencies and instances."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.latency import (
    BPRLatency,
    ConstantLatency,
    LinearLatency,
    MM1Latency,
    MonomialLatency,
    PolynomialLatency,
    ShiftedLatency,
)
from repro.network import NetworkInstance, ParallelLinkInstance
from repro.serialization import (
    instance_from_dict,
    instance_to_dict,
    latency_from_dict,
    latency_to_dict,
    load_instance,
    save_instance,
)
from repro.instances import (
    braess_paradox,
    figure_4_example,
    pigou,
    roughgarden_example,
    random_multicommodity_instance,
)

ALL_LATENCIES = [
    LinearLatency(1.5, 0.25),
    ConstantLatency(0.7),
    MonomialLatency(2.0, 3.0, 0.1),
    PolynomialLatency([0.5, 1.0, 0.25]),
    BPRLatency(1.0, 2.0, alpha=0.2, beta=3.0),
    MM1Latency(5.0),
]


class TestLatencyRoundTrip:
    @pytest.mark.parametrize("latency", ALL_LATENCIES,
                             ids=lambda lat: type(lat).__name__)
    def test_roundtrip_preserves_values(self, latency):
        restored = latency_from_dict(latency_to_dict(latency))
        assert type(restored) is type(latency)
        for x in (0.0, 0.5, 1.0, 2.0):
            assert float(restored.value(x)) == pytest.approx(float(latency.value(x)))

    def test_unknown_type_rejected(self):
        with pytest.raises(ModelError):
            latency_from_dict({"type": "exotic"})

    def test_missing_type_rejected(self):
        with pytest.raises(ModelError):
            latency_from_dict({"slope": 1.0})

    def test_wrapped_latency_not_serialisable(self):
        with pytest.raises(ModelError):
            latency_to_dict(ShiftedLatency(LinearLatency(1.0), 0.5))

    def test_dicts_are_json_compatible(self):
        for latency in ALL_LATENCIES:
            json.dumps(latency_to_dict(latency))


class TestInstanceRoundTrip:
    @pytest.mark.parametrize("builder", [pigou, figure_4_example],
                             ids=["pigou", "figure4"])
    def test_parallel_roundtrip(self, builder):
        instance = builder()
        restored = instance_from_dict(instance_to_dict(instance))
        assert isinstance(restored, ParallelLinkInstance)
        assert restored.num_links == instance.num_links
        assert restored.demand == instance.demand
        assert restored.names == instance.names
        flows = np.full(instance.num_links, instance.demand / instance.num_links)
        assert restored.cost(flows) == pytest.approx(instance.cost(flows))

    @pytest.mark.parametrize("builder", [braess_paradox, roughgarden_example],
                             ids=["braess", "roughgarden"])
    def test_network_roundtrip(self, builder):
        instance = builder()
        restored = instance_from_dict(instance_to_dict(instance))
        assert isinstance(restored, NetworkInstance)
        assert restored.network.num_edges == instance.network.num_edges
        assert restored.total_demand == pytest.approx(instance.total_demand)
        flows = np.linspace(0.1, 0.5, instance.network.num_edges)
        assert restored.cost(flows) == pytest.approx(instance.cost(flows))

    def test_multicommodity_roundtrip(self):
        instance = random_multicommodity_instance(3, 3, num_commodities=2, seed=1)
        restored = instance_from_dict(instance_to_dict(instance))
        assert restored.num_commodities == 2

    def test_unknown_instance_type_rejected(self):
        with pytest.raises(ModelError):
            instance_from_dict({"type": "hypergraph"})

    def test_invalid_payload_rejected(self):
        with pytest.raises(ModelError):
            instance_from_dict("not-a-dict")


class TestFileIO:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "pigou.json"
        save_instance(pigou(), path)
        restored = load_instance(path)
        assert isinstance(restored, ParallelLinkInstance)
        assert restored.demand == 1.0

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ModelError):
            load_instance(path)

    def test_beta_preserved_through_roundtrip(self, tmp_path):
        from repro.core import optop
        path = tmp_path / "figure4.json"
        save_instance(figure_4_example(), path)
        restored = load_instance(path)
        assert optop(restored).beta == pytest.approx(29.0 / 120.0, abs=1e-9)
