"""Demand-curve unit tests: shapes, integrals, serialisation."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ModelError
from repro.scenarios import (
    ExponentialDemandCurve,
    LinearDemandCurve,
    demand_curve_from_dict,
)


class TestLinearCurve:
    def test_price_is_affine_then_clipped(self):
        curve = LinearDemandCurve(intercept=2.0, slope=0.5)
        assert curve.price_at(0.0) == 2.0
        assert curve.price_at(2.0) == 1.0
        assert curve.price_at(4.0) == 0.0
        assert curve.price_at(10.0) == 0.0  # never negative

    def test_max_rate_is_the_choke_point(self):
        curve = LinearDemandCurve(intercept=3.0, slope=1.5)
        assert curve.max_rate == pytest.approx(2.0)
        assert curve.price_at(curve.max_rate) == pytest.approx(0.0)

    def test_willingness_integrates_the_price(self):
        curve = LinearDemandCurve(intercept=2.0, slope=1.0)
        # int_0^1 (2 - t) dt = 1.5
        assert curve.willingness(1.0) == pytest.approx(1.5)
        # Beyond the choke point the integral saturates.
        assert curve.willingness(5.0) == pytest.approx(curve.willingness(2.0))

    def test_consumer_surplus(self):
        curve = LinearDemandCurve(intercept=2.0, slope=1.0)
        assert curve.consumer_surplus(1.0, 1.0) == pytest.approx(0.5)

    def test_rejects_non_positive_parameters(self):
        with pytest.raises(ModelError):
            LinearDemandCurve(intercept=0.0)
        with pytest.raises(ModelError):
            LinearDemandCurve(intercept=1.0, slope=-1.0)


class TestExponentialCurve:
    def test_price_decays_but_stays_positive(self):
        curve = ExponentialDemandCurve(intercept=2.0, decay=1.0)
        assert curve.price_at(0.0) == pytest.approx(2.0)
        assert curve.price_at(1.0) == pytest.approx(2.0 / math.e)
        assert curve.price_at(50.0) > 0.0
        assert math.isinf(curve.max_rate)

    def test_willingness_saturates_at_intercept_over_decay(self):
        curve = ExponentialDemandCurve(intercept=3.0, decay=1.5)
        assert curve.willingness(1e9) == pytest.approx(2.0)


class TestSerialisation:
    @pytest.mark.parametrize("curve", [
        LinearDemandCurve(intercept=2.0, slope=0.75),
        ExponentialDemandCurve(intercept=1.5, decay=2.0),
    ])
    def test_round_trip(self, curve):
        rebuilt = demand_curve_from_dict(curve.to_dict())
        assert rebuilt == curve
        assert rebuilt.price_at(0.7) == pytest.approx(curve.price_at(0.7))

    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ModelError, match="unknown demand curve"):
            demand_curve_from_dict({"kind": "cubic", "intercept": 1.0})

    def test_invalid_payload_is_rejected(self):
        with pytest.raises(ModelError):
            demand_curve_from_dict({"intercept": 1.0})
        with pytest.raises(ModelError):
            demand_curve_from_dict({"kind": "linear", "bogus": 1.0})
