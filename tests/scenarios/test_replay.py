"""Trace replay through the serving layer: caching, resume, accounting."""

from __future__ import annotations

import pytest

from repro import instances
from repro.api import SolveConfig, clear_cache
from repro.exceptions import ModelError
from repro.scenarios import DemandTrace, TraceReport, replay_trace
from repro.serve import SolveService
from repro.study import ArtifactStore


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestReplay:
    def test_per_step_reports_align_with_the_trace(self):
        trace = DemandTrace.from_process("piecewise",
                                         {"levels": [0.5, 1.0, 2.0]})
        report = replay_trace(instances.pigou(), trace)
        assert len(report) == 3
        assert [step.demand for step in report.steps] == [0.5, 1.0, 2.0]
        assert [step.index for step in report.steps] == [0, 1, 2]
        for step, solve_report in zip(report.steps, report.reports):
            assert step.beta == solve_report.beta
            assert step.induced_cost == solve_report.induced_cost

    def test_repeated_levels_are_collapsed(self):
        trace = DemandTrace.from_process("constant",
                                         {"level": 1.5, "num_steps": 20})
        report = replay_trace(instances.figure_4_example(), trace)
        stats = report.stats
        # One solve; the 19 repeats coalesce or hit tier 1.
        assert stats.batched_requests <= 1
        assert stats.coalesced + stats.tier1_hits >= 19
        assert report.num_distinct_levels == 1

    def test_second_replay_against_a_store_is_fully_resumed(self, tmp_path):
        trace = DemandTrace.from_process(
            "diurnal", {"num_steps": 50, "base": 2.0, "amplitude": 1.0})
        inst = instances.figure_4_example()
        store_dir = tmp_path / "store"
        cold = replay_trace(inst, trace, store=ArtifactStore(store_dir))
        assert not cold.fully_resumed
        assert cold.solver_calls == cold.num_distinct_levels

        clear_cache()
        warm = replay_trace(inst, trace, store=ArtifactStore(store_dir))
        assert warm.fully_resumed
        assert warm.solver_calls == 0
        assert warm.stats.tier2_hits + warm.stats.tier1_hits == len(trace)
        for a, b in zip(cold.steps, warm.steps):
            assert b.induced_cost == pytest.approx(a.induced_cost, abs=1e-12)
            assert b.beta == pytest.approx(a.beta, abs=1e-12)

    def test_long_traces_do_not_hit_service_backpressure(self):
        # The private replay service must be unbounded: a trace longer than
        # SolveService's default max_queue (10,000) submits every step up
        # front and would otherwise die with ServiceOverloadedError.
        trace = DemandTrace.from_process("constant",
                                         {"level": 1.0, "num_steps": 10_050})
        report = replay_trace(instances.pigou(), trace,
                              config=SolveConfig(compute_nash=False))
        assert len(report) == 10_050
        assert report.stats.rejected == 0
        assert report.solver_calls <= 1

    def test_shared_service_is_left_running(self):
        trace = DemandTrace.from_process("constant",
                                         {"level": 1.0, "num_steps": 3})
        with SolveService(max_wait_ms=0.5) as service:
            report = replay_trace(instances.pigou(), trace, service=service)
            assert service.running
            assert len(report) == 3

    def test_trace_type_is_validated(self):
        with pytest.raises(ModelError, match="DemandTrace"):
            replay_trace(instances.pigou(), [1.0, 2.0])

    def test_config_is_forwarded(self):
        trace = DemandTrace.from_process("constant",
                                         {"level": 1.0, "num_steps": 2})
        report = replay_trace(instances.pigou(), trace,
                              config=SolveConfig(compute_nash=False))
        assert all(not r.config.compute_nash for r in report.reports)

    def test_report_serialises(self):
        trace = DemandTrace.from_process("piecewise", {"levels": [1.0, 2.0]})
        report = replay_trace(instances.pigou(), trace)
        payload = report.to_dict()
        assert payload["strategy"] == "auto"
        assert payload["solver_calls"] == report.solver_calls
        assert len(payload["steps"]) == 2
        assert report.to_json()  # JSON-serialisable end to end
        assert "replayed 2 steps" in report.summary()
        assert "Trace replay" in report.to_table()
        assert isinstance(report, TraceReport)
