"""Property tests of the scenario layer.

Two invariants pin the new subsystem to the static solver it wraps:

* **Monotonicity** — the realised rate of :func:`repro.scenarios.solve_elastic`
  is non-decreasing in the demand-curve intercept: a population that values
  routing more routes (weakly) more flow, on every instance family.
* **Degenerate-trace equivalence** — replaying a *constant*
  :class:`~repro.scenarios.DemandTrace` must reproduce the static solve
  bit for bit (1e-9) at every step: the scenario layer adds no numerical
  noise of its own.
"""

from __future__ import annotations

import pytest

from repro import instances
from repro.api import SolveConfig, clear_cache, solve
from repro.scenarios import (
    DemandTrace,
    LinearDemandCurve,
    replay_trace,
    solve_elastic,
    wardrop_level,
)

#: Instance families the properties are checked on (name -> builder).
FAMILIES = {
    "pigou": lambda seed: instances.pigou(),
    "figure4": lambda seed: instances.figure_4_example(),
    "linear": lambda seed: instances.random_linear_parallel(
        5, demand=2.0, seed=seed),
    "mixed": lambda seed: instances.random_mixed_parallel(
        6, demand=2.0, seed=seed),
}

SEEDS = (0, 1, 2)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("seed", SEEDS)
def test_realised_rate_is_monotone_in_the_intercept(family, seed):
    instance = FAMILIES[family](seed)
    floor = wardrop_level(instance, 0.0)
    previous_rate = 0.0
    previous_surplus = 0.0
    for offset in (0.25, 0.5, 1.0, 2.0, 4.0):
        elastic = solve_elastic(
            instance, LinearDemandCurve(intercept=floor + offset, slope=1.0))
        assert elastic.realised_rate >= previous_rate - 1e-9, (
            f"{family}/seed {seed}: rate dropped from {previous_rate} to "
            f"{elastic.realised_rate} when the intercept rose to "
            f"{floor + offset}")
        assert elastic.consumer_surplus >= previous_surplus - 1e-9
        assert elastic.consumer_surplus >= -1e-12
        # The market clears: the fixed-point residual is tiny.
        assert abs(elastic.metadata["residual"]) < 1e-6
        previous_rate = elastic.realised_rate
        previous_surplus = elastic.consumer_surplus


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("seed", SEEDS[:2])
def test_constant_trace_reproduces_the_static_solve(family, seed):
    instance = FAMILIES[family](seed)
    level = 1.25
    num_steps = 6
    trace = DemandTrace.from_process(
        "constant", {"level": level, "num_steps": num_steps})
    config = SolveConfig()

    static = solve(instance.with_demand(level), "optop", config=config)
    replay = replay_trace(instance, trace, "optop", config=config)

    assert len(replay) == num_steps
    for step, report in zip(replay.steps, replay.reports):
        assert step.demand == level
        assert step.beta == pytest.approx(static.beta, abs=1e-9)
        assert step.induced_cost == pytest.approx(static.induced_cost,
                                                  abs=1e-9)
        assert step.optimum_cost == pytest.approx(static.optimum_cost,
                                                  abs=1e-9)
        for mine, theirs in zip(report.leader_flows, static.leader_flows):
            assert mine == pytest.approx(theirs, abs=1e-9)
        for mine, theirs in zip(report.induced_flows, static.induced_flows):
            assert mine == pytest.approx(theirs, abs=1e-9)
