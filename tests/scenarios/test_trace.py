"""Demand-trace processes, CSV loading and the study-pipeline bridge."""

from __future__ import annotations

import pytest

from repro.exceptions import ModelError
from repro.scenarios import (
    DemandTrace,
    TraceAxis,
    available_trace_processes,
    register_trace_process,
)
from repro.scenarios.trace import TRACE_PROCESSES
from repro.study import StudySpec


class TestProcesses:
    def test_builtins_are_registered(self):
        names = available_trace_processes()
        for expected in ("constant", "piecewise", "diurnal", "random_walk",
                         "literal"):
            assert expected in names

    def test_constant(self):
        trace = DemandTrace.from_process("constant",
                                         {"level": 1.5, "num_steps": 4})
        assert trace.levels == (1.5, 1.5, 1.5, 1.5)
        assert trace.distinct_levels == (1.5,)

    def test_piecewise_holds_each_level(self):
        trace = DemandTrace.from_process(
            "piecewise", {"levels": [1.0, 2.0], "steps_per_level": 3})
        assert trace.levels == (1.0, 1.0, 1.0, 2.0, 2.0, 2.0)

    def test_diurnal_is_positive_and_revisits_levels(self):
        trace = DemandTrace.from_process(
            "diurnal", {"num_steps": 48, "base": 2.0, "amplitude": 1.0})
        assert len(trace) == 48
        assert all(level > 0.0 for level in trace)
        # The quantised sinusoid pairs up its rising and falling flanks.
        assert len(trace.distinct_levels) < len(trace)

    def test_diurnal_amplitude_must_stay_below_base(self):
        with pytest.raises(ModelError, match="amplitude"):
            DemandTrace.from_process("diurnal", {"base": 1.0,
                                                 "amplitude": 1.0})

    def test_random_walk_is_seed_deterministic_and_clipped(self):
        params = {"num_steps": 32, "base": 2.0, "step_scale": 0.5,
                  "min_level": 0.5, "max_level": 3.0}
        a = DemandTrace.from_process("random_walk", params, seed=7)
        b = DemandTrace.from_process("random_walk", params, seed=7)
        c = DemandTrace.from_process("random_walk", params, seed=8)
        assert a.levels == b.levels
        assert a.levels != c.levels
        assert all(0.5 <= level <= 3.0 for level in a)

    def test_levels_must_be_positive(self):
        with pytest.raises(ModelError):
            DemandTrace.from_process("literal", {"levels": [1.0, -2.0]})

    def test_unknown_process_lists_alternatives(self):
        with pytest.raises(ModelError, match="unknown generator"):
            DemandTrace.from_process("sawtooth")

    def test_custom_process_registration(self):
        @register_trace_process("ramp_test", seeded=False, schema={
            "type": "object", "additionalProperties": False,
            "properties": {"num_steps": {"type": "integer", "minimum": 1}}})
        def ramp(num_steps: int = 3):
            """A linear ramp."""
            return tuple(float(i + 1) for i in range(num_steps))

        try:
            trace = DemandTrace.from_process("ramp_test", {"num_steps": 4})
            assert trace.levels == (1.0, 2.0, 3.0, 4.0)
        finally:
            TRACE_PROCESSES.unregister("ramp_test")


class TestDemandTrace:
    def test_sequence_protocol(self):
        trace = DemandTrace.from_process("piecewise", {"levels": [2.0, 3.0]})
        assert len(trace) == 2
        assert list(trace) == [2.0, 3.0]
        assert trace[1] == 3.0

    def test_dict_round_trip(self):
        trace = DemandTrace.from_process(
            "diurnal", {"num_steps": 12, "base": 2.0, "amplitude": 0.5})
        rebuilt = DemandTrace.from_dict(trace.to_dict())
        assert rebuilt == trace

    def test_from_csv(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text("# demand levels\n1.0, 2.0\n3.5\n\n", encoding="utf-8")
        trace = DemandTrace.from_csv(path)
        assert trace.levels == (1.0, 2.0, 3.5)
        assert trace.process == "literal"

    def test_from_csv_rejects_junk(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0\nnot-a-number\n", encoding="utf-8")
        with pytest.raises(ModelError, match="invalid demand level"):
            DemandTrace.from_csv(path)

    def test_from_csv_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("# nothing\n", encoding="utf-8")
        with pytest.raises(ModelError, match="no demand levels"):
            DemandTrace.from_csv(path)


class TestTraceAxis:
    def test_axis_expands_one_cell_per_distinct_level(self):
        trace = DemandTrace.from_process(
            "diurnal", {"num_steps": 24, "base": 2.0, "amplitude": 1.0})
        axis = TraceAxis("figure4", trace=trace, label="fig4")
        spec = StudySpec("trace-study", [axis], strategies=("optop",))
        cells = list(spec.expand())
        assert len(cells) == len(trace.distinct_levels)
        demands = [cell.params_dict["demand"] for cell in cells]
        assert demands == list(trace.distinct_levels)

    def test_axis_keeps_fixed_params(self):
        trace = DemandTrace.from_process("piecewise", {"levels": [1.0, 2.0]})
        axis = TraceAxis("random_linear_parallel", {"num_links": 4},
                         trace=trace, seeds=(0, 1))
        assert axis.num_points == 2 * 2  # 2 levels x 2 seeds

    def test_axis_rejects_demand_in_params(self):
        trace = DemandTrace.from_process("constant", {"level": 1.0})
        with pytest.raises(ModelError, match="demand"):
            TraceAxis("figure4", {"demand": 2.0}, trace=trace)

    def test_axis_requires_a_trace(self):
        with pytest.raises(ModelError, match="DemandTrace"):
            TraceAxis("figure4", trace=[1.0, 2.0])
