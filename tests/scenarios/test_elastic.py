"""Elastic-demand fixed point: analytic answers, networks, serialisation."""

from __future__ import annotations

import pytest

from repro import instances
from repro.api import SolveConfig
from repro.exceptions import ModelError
from repro.scenarios import (
    ElasticReport,
    ExponentialDemandCurve,
    LinearDemandCurve,
    solve_elastic,
    wardrop_level,
    with_total_demand,
)
from repro.study import ArtifactStore


class TestWardropLevel:
    def test_pigou_level_is_min_of_latency_and_constant(self):
        # Pigou: l1(x) = x, l2(x) = 1.  The Nash level is q for q <= 1,
        # then the constant link absorbs the rest at level 1.
        inst = instances.pigou()
        assert wardrop_level(inst, 0.5) == pytest.approx(0.5, abs=1e-9)
        assert wardrop_level(inst, 2.0) == pytest.approx(1.0, abs=1e-9)

    def test_level_is_monotone_in_the_rate(self):
        inst = instances.figure_4_example()
        levels = [wardrop_level(inst, q) for q in (0.5, 1.0, 2.0, 4.0)]
        assert levels == sorted(levels)

    def test_zero_rate_network_level_is_free_flow_distance(self):
        inst = instances.braess_paradox()
        assert wardrop_level(inst, 0.0) >= 0.0

    def test_reference_backend_agrees(self):
        inst = instances.figure_4_example()
        vec = wardrop_level(inst, 1.7)
        ref = wardrop_level(inst, 1.7,
                            config=SolveConfig(kernel_backend="reference"))
        assert vec == pytest.approx(ref, abs=1e-9)


class TestWithTotalDemand:
    def test_parallel_rescale(self):
        inst = with_total_demand(instances.pigou(), 0.25)
        assert inst.demand == pytest.approx(0.25)

    def test_network_rescale_scales_commodities_proportionally(self):
        inst = instances.braess_paradox()
        scaled = with_total_demand(inst, 3.0)
        assert scaled.total_demand == pytest.approx(3.0)
        assert len(scaled.commodities) == len(inst.commodities)


class TestSolveElastic:
    def test_pigou_analytic_fixed_point(self):
        # D(q) = 2 - q meets the Pigou level (q for q <= 1) at q = 1.
        elastic = solve_elastic(instances.pigou(),
                                LinearDemandCurve(intercept=2.0, slope=1.0))
        assert elastic.realised_rate == pytest.approx(1.0, abs=1e-6)
        assert elastic.price == pytest.approx(1.0, abs=1e-6)
        assert elastic.consumer_surplus == pytest.approx(0.5, abs=1e-6)
        assert elastic.beta == pytest.approx(0.5, abs=1e-6)

    def test_residual_is_small_at_the_fixed_point(self):
        elastic = solve_elastic(
            instances.figure_4_example(),
            LinearDemandCurve(intercept=3.0, slope=0.5))
        assert abs(elastic.metadata["residual"]) < 1e-6

    def test_exponential_curve_on_unbounded_instance(self):
        elastic = solve_elastic(
            instances.figure_4_example(),
            ExponentialDemandCurve(intercept=4.0, decay=0.5))
        assert elastic.realised_rate > 0.0
        assert elastic.consumer_surplus > 0.0

    def test_network_instance(self):
        elastic = solve_elastic(
            instances.braess_paradox(),
            LinearDemandCurve(intercept=3.0, slope=1.0), "mop")
        # Braess: level(q) at the Nash flow; D(q) = 3 - q crosses at q = 1.
        assert elastic.realised_rate == pytest.approx(1.0, abs=1e-5)
        assert elastic.beta == pytest.approx(1.0, abs=1e-5)

    def test_market_that_does_not_open_is_rejected(self):
        # Pigou's constant link has l(0) = 0 on the linear link, so any
        # positive intercept opens the market; force a closed one on a
        # shifted instance instead.
        inst = instances.figure_4_example()
        floor = wardrop_level(inst, 0.0)
        if floor <= 0.0:
            pytest.skip("instance has a zero free-flow level")
        with pytest.raises(ModelError, match="no positive rate"):
            solve_elastic(inst, LinearDemandCurve(intercept=floor * 0.5))

    def test_curve_type_is_validated(self):
        with pytest.raises(ModelError, match="DemandCurve"):
            solve_elastic(instances.pigou(), {"kind": "linear"})

    def test_json_round_trip(self):
        elastic = solve_elastic(instances.pigou(),
                                LinearDemandCurve(intercept=2.0, slope=1.0))
        rebuilt = ElasticReport.from_json(elastic.to_json())
        assert rebuilt.realised_rate == elastic.realised_rate
        assert rebuilt.report == elastic.report
        assert rebuilt.demand_curve == elastic.demand_curve

    def test_store_resumes_the_static_solve(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        curve = LinearDemandCurve(intercept=2.0, slope=1.0)
        first = solve_elastic(instances.pigou(), curve, store=store)
        writes = store.stats()["writes"]
        assert writes == 1
        second = solve_elastic(instances.pigou(), curve, store=store)
        assert store.stats()["writes"] == writes  # served from the store
        assert second.report.induced_cost == first.report.induced_cost
