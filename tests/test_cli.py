"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import NAMED_INSTANCES, build_parser, main
from repro.instances import pigou
from repro.serialization import save_instance


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze"])

    def test_named_instances_registered(self):
        assert {"pigou", "figure4", "braess", "roughgarden"} <= set(NAMED_INSTANCES)


class TestAnalyzeCommand:
    def test_analyze_pigou(self, capsys):
        assert main(["analyze", "--instance", "pigou"]) == 0
        out = capsys.readouterr().out
        assert "price of optimum beta = 0.5" in out
        assert "price of anarchy = 1.333333" in out

    def test_analyze_network_instance(self, capsys):
        assert main(["analyze", "--instance", "roughgarden"]) == 0
        out = capsys.readouterr().out
        assert "price of optimum beta = 0.5" in out

    def test_analyze_from_file(self, tmp_path, capsys):
        path = tmp_path / "instance.json"
        save_instance(pigou(), path)
        assert main(["analyze", "--file", str(path)]) == 0
        assert "beta" in capsys.readouterr().out

    def test_analyze_missing_file(self, capsys):
        assert main(["analyze", "--file", "/nonexistent/instance.json"]) == 2
        assert "error" in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_pigou(self, capsys):
        assert main(["sweep", "--instance", "pigou", "--alphas", "0.25", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "LLF ratio" in out
        assert "0.25" in out

    def test_sweep_rejects_network_instance(self, capsys):
        assert main(["sweep", "--instance", "braess"]) == 2
        assert "parallel-link" in capsys.readouterr().err


class TestExperimentsCommand:
    def test_run_selected_experiments(self, capsys):
        assert main(["experiments", "--only", "E1", "E2"]) == 0
        out = capsys.readouterr().out
        assert "[E1]" in out and "[E2]" in out

    def test_invalid_experiment_id_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiments", "--only", "E99"])


class TestStudyCommand:
    def test_list_shows_experiments_and_named_studies(self, capsys):
        assert main(["study", "list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E14" in out and "A3" in out
        assert "smoke" in out

    def test_list_generators(self, capsys):
        assert main(["study", "list", "--generators"]) == 0
        out = capsys.readouterr().out
        assert "random_linear_parallel" in out
        assert "literal" in out

    def test_run_experiment_by_id(self, capsys):
        assert main(["study", "run", "E1"]) == 0
        out = capsys.readouterr().out
        assert "[E1]" in out
        assert "solver calls" in out

    def test_run_named_study_with_store_then_resume(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        from repro.api import clear_cache

        clear_cache()
        assert main(["study", "run", "smoke", "--store", store]) == 0
        first = capsys.readouterr().out
        assert "store hits 0" in first
        clear_cache()
        assert main(["study", "resume", "smoke", "--store", store]) == 0
        second = capsys.readouterr().out
        assert "fully resumed" in second

    def test_resume_requires_store(self):
        with pytest.raises(SystemExit):
            main(["study", "resume", "smoke"])

    def test_run_unknown_name_errors(self, capsys):
        assert main(["study", "run", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_json_and_csv_export(self, tmp_path, capsys):
        csv_path = tmp_path / "cells.csv"
        assert main(["study", "run", "smoke", "--json",
                     "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert '"counters"' in out
        assert csv_path.read_text(encoding="utf-8").startswith("index,")


class TestSolveCommand:
    def test_static_solve_matches_analyze(self, capsys):
        assert main(["solve", "--instance", "pigou"]) == 0
        out = capsys.readouterr().out
        assert "price of optimum beta = 0.500000" in out

    def test_elastic_solve_reports_rate_and_surplus(self, capsys):
        assert main(["solve", "--instance", "pigou", "--elastic",
                     "--intercept", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "realised rate = 1.000000" in out
        assert "consumer surplus = 0.500000" in out

    def test_elastic_json_round_trips(self, capsys):
        assert main(["solve", "--instance", "pigou", "--elastic",
                     "--json"]) == 0
        import json as _json

        from repro.scenarios import ElasticReport

        payload = _json.loads(capsys.readouterr().out)
        report = ElasticReport.from_dict(payload)
        assert report.realised_rate > 0.0

    def test_elastic_exponential_curve(self, capsys):
        assert main(["solve", "--instance", "figure4", "--elastic",
                     "--curve", "exponential", "--intercept", "4.0",
                     "--decay", "0.5"]) == 0
        assert "realised rate" in capsys.readouterr().out

    def test_closed_market_is_a_cli_error(self, tmp_path, capsys):
        # An M/M/1 farm has a positive free-flow level; an intercept below
        # it cannot open the market.
        from repro import instances, save_instance

        path = tmp_path / "mm1.json"
        save_instance(instances.mm1_server_farm(2, 2), path)
        assert main(["solve", "--file", str(path), "--elastic",
                     "--intercept", "0.01"]) == 2
        assert "no positive rate" in capsys.readouterr().err


class TestTraceCommand:
    def test_list_shows_builtin_processes(self, capsys):
        assert main(["trace", "list"]) == 0
        out = capsys.readouterr().out
        for process in ("constant", "piecewise", "diurnal", "random_walk",
                        "literal"):
            assert process in out

    def test_run_prints_per_step_table_and_summary(self, capsys):
        assert main(["trace", "run", "--instance", "figure4",
                     "--steps", "8"]) == 0
        out = capsys.readouterr().out
        assert "Trace replay" in out
        assert "replayed 8 steps" in out

    def test_run_second_replay_fully_resumes(self, tmp_path, capsys):
        from repro.api import clear_cache

        store = str(tmp_path / "store")
        clear_cache()
        assert main(["trace", "run", "--instance", "figure4",
                     "--steps", "50", "--store", store, "--quiet"]) == 0
        first = capsys.readouterr().out
        assert "replayed 50 steps" in first
        assert "fully resumed" not in first
        clear_cache()
        assert main(["trace", "run", "--instance", "figure4",
                     "--steps", "50", "--store", store, "--quiet"]) == 0
        second = capsys.readouterr().out
        assert "0 solver calls (fully resumed)" in second

    def test_run_json_reports_accounting(self, capsys):
        assert main(["trace", "run", "--instance", "pigou",
                     "--process", "piecewise", "--levels", "1.0", "2.0",
                     "--json"]) == 0
        import json as _json

        payload = _json.loads(capsys.readouterr().out)
        assert len(payload["steps"]) == 2
        assert payload["fully_resumed"] is False

    def test_run_from_csv(self, tmp_path, capsys):
        path = tmp_path / "levels.csv"
        path.write_text("1.0\n2.0\n1.0\n", encoding="utf-8")
        assert main(["trace", "run", "--instance", "pigou",
                     "--csv", str(path), "--quiet"]) == 0
        assert "replayed 3 steps" in capsys.readouterr().out

    def test_piecewise_without_levels_is_an_error(self, capsys):
        assert main(["trace", "run", "--instance", "pigou",
                     "--process", "piecewise"]) == 2
        assert "needs --levels" in capsys.readouterr().err


class TestServeBenchTrace:
    def test_bench_with_trace_runs_and_is_consistent(self, capsys):
        assert main(["serve", "bench", "--requests", "60", "--distinct", "6",
                     "--passes", "2", "--trace", "diurnal",
                     "--trace-steps", "12", "--json"]) == 0
        import json as _json

        payload = _json.loads(capsys.readouterr().out)
        warm = payload["passes"][1]["stats"]
        assert warm["batches"] == 0
        assert all(p["stats"]["consistent"] for p in payload["passes"])


class TestChaosListCommand:
    def test_list_shows_named_plans_with_seeds(self, capsys):
        assert main(["chaos", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("smoke", "slow_solver", "bad_disk"):
            assert name in out
        assert "worker_sigkill" in out
        assert "0x" in out  # seeds print in hex for easy pinning


class TestObsCommand:
    """`repro obs` against a live in-process worker endpoint."""

    @pytest.fixture()
    def obs_worker_url(self):
        import asyncio
        import threading

        from repro.cluster.worker import WorkerServer
        from repro.obs import Observability

        obs = Observability(service="worker-cli")
        # Pre-recorded spans: the CLI reads whatever the ring holds, so
        # the test stays deterministic without driving a solve.
        obs.tracer.record_complete(
            "service.batch", trace_id="t1", start=0.0, duration=0.050,
            strategy="optop", batch_size=2)
        obs.tracer.record_complete(
            "worker.solve", trace_id="t1", start=0.0, duration=0.060)

        loop = asyncio.new_event_loop()
        started = threading.Event()
        state = {}

        def run():
            asyncio.set_event_loop(loop)
            worker = WorkerServer(obs=obs)
            loop.run_until_complete(worker.start())
            state["worker"] = worker
            started.set()
            loop.run_forever()
            loop.run_until_complete(worker.stop())
            loop.close()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert started.wait(timeout=30.0)
        try:
            yield f"http://127.0.0.1:{state['worker'].port}"
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout=30.0)

    def test_metrics_text_exposition(self, obs_worker_url, capsys):
        assert main(["obs", "metrics", "--url", obs_worker_url]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_requests_total counter" in out
        assert "repro_requests_total 0" in out

    def test_metrics_json(self, obs_worker_url, capsys):
        import json as _json

        assert main(["obs", "metrics", "--url", obs_worker_url,
                     "--json"]) == 0
        payload = _json.loads(capsys.readouterr().out)
        assert payload["repro_requests_total"]["samples"] == [
            {"labels": {}, "value": 0}]

    def test_trace_table_lists_spans(self, obs_worker_url, capsys):
        assert main(["obs", "trace", "--url", obs_worker_url]) == 0
        out = capsys.readouterr().out
        assert "service.batch" in out
        assert "worker.solve" in out
        assert "t1" in out

    def test_top_ranks_by_cumulative_time(self, obs_worker_url, capsys):
        assert main(["obs", "top", "--url", obs_worker_url]) == 0
        out = capsys.readouterr().out
        # worker.solve (60 ms) outranks the strategy-labeled batch (50 ms).
        assert out.index("worker.solve") < out.index("service.batch[optop]")

    def test_unreachable_endpoint_is_a_clean_error(self, capsys):
        assert main(["obs", "metrics", "--url",
                     "http://127.0.0.1:1/"]) == 2
        assert "cannot reach" in capsys.readouterr().err
