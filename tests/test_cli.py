"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import NAMED_INSTANCES, build_parser, main
from repro.instances import pigou
from repro.serialization import save_instance


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze"])

    def test_named_instances_registered(self):
        assert {"pigou", "figure4", "braess", "roughgarden"} <= set(NAMED_INSTANCES)


class TestAnalyzeCommand:
    def test_analyze_pigou(self, capsys):
        assert main(["analyze", "--instance", "pigou"]) == 0
        out = capsys.readouterr().out
        assert "price of optimum beta = 0.5" in out
        assert "price of anarchy = 1.333333" in out

    def test_analyze_network_instance(self, capsys):
        assert main(["analyze", "--instance", "roughgarden"]) == 0
        out = capsys.readouterr().out
        assert "price of optimum beta = 0.5" in out

    def test_analyze_from_file(self, tmp_path, capsys):
        path = tmp_path / "instance.json"
        save_instance(pigou(), path)
        assert main(["analyze", "--file", str(path)]) == 0
        assert "beta" in capsys.readouterr().out

    def test_analyze_missing_file(self, capsys):
        assert main(["analyze", "--file", "/nonexistent/instance.json"]) == 2
        assert "error" in capsys.readouterr().err


class TestSweepCommand:
    def test_sweep_pigou(self, capsys):
        assert main(["sweep", "--instance", "pigou", "--alphas", "0.25", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "LLF ratio" in out
        assert "0.25" in out

    def test_sweep_rejects_network_instance(self, capsys):
        assert main(["sweep", "--instance", "braess"]) == 2
        assert "parallel-link" in capsys.readouterr().err


class TestExperimentsCommand:
    def test_run_selected_experiments(self, capsys):
        assert main(["experiments", "--only", "E1", "E2"]) == 0
        out = capsys.readouterr().out
        assert "[E1]" in out and "[E2]" in out

    def test_invalid_experiment_id_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiments", "--only", "E99"])


class TestStudyCommand:
    def test_list_shows_experiments_and_named_studies(self, capsys):
        assert main(["study", "list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E14" in out and "A3" in out
        assert "smoke" in out

    def test_list_generators(self, capsys):
        assert main(["study", "list", "--generators"]) == 0
        out = capsys.readouterr().out
        assert "random_linear_parallel" in out
        assert "literal" in out

    def test_run_experiment_by_id(self, capsys):
        assert main(["study", "run", "E1"]) == 0
        out = capsys.readouterr().out
        assert "[E1]" in out
        assert "solver calls" in out

    def test_run_named_study_with_store_then_resume(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        from repro.api import clear_cache

        clear_cache()
        assert main(["study", "run", "smoke", "--store", store]) == 0
        first = capsys.readouterr().out
        assert "store hits 0" in first
        clear_cache()
        assert main(["study", "resume", "smoke", "--store", store]) == 0
        second = capsys.readouterr().out
        assert "fully resumed" in second

    def test_resume_requires_store(self):
        with pytest.raises(SystemExit):
            main(["study", "resume", "smoke"])

    def test_run_unknown_name_errors(self, capsys):
        assert main(["study", "run", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_run_json_and_csv_export(self, tmp_path, capsys):
        csv_path = tmp_path / "cells.csv"
        assert main(["study", "run", "smoke", "--json",
                     "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert '"counters"' in out
        assert csv_path.read_text(encoding="utf-8").startswith("index,")
