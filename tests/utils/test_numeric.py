"""Tests for tolerance-aware comparisons."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.numeric import close, geq, leq, positive_part, relative_gap


class TestClose:
    def test_equal_values(self):
        assert close(1.0, 1.0)

    def test_within_absolute_tolerance(self):
        assert close(0.0, 1e-12)

    def test_within_relative_tolerance(self):
        assert close(1e6, 1e6 * (1 + 1e-9))

    def test_clearly_different(self):
        assert not close(1.0, 1.1)

    def test_custom_tolerance(self):
        assert close(1.0, 1.05, atol=0.1)


class TestOrderedComparisons:
    def test_leq_strictly_less(self):
        assert leq(1.0, 2.0)

    def test_leq_equal_within_tolerance(self):
        assert leq(2.0 + 1e-12, 2.0)

    def test_leq_clearly_greater(self):
        assert not leq(2.1, 2.0)

    def test_geq_strictly_greater(self):
        assert geq(3.0, 2.0)

    def test_geq_equal_within_tolerance(self):
        assert geq(2.0 - 1e-12, 2.0)

    def test_geq_clearly_less(self):
        assert not geq(1.9, 2.0)


class TestPositivePart:
    def test_scalar_positive(self):
        assert positive_part(2.5) == 2.5

    def test_scalar_negative(self):
        assert positive_part(-1.0) == 0.0

    def test_array(self):
        out = positive_part(np.array([-1.0, 0.0, 2.0]))
        assert np.allclose(out, [0.0, 0.0, 2.0])

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_never_negative(self, x):
        assert positive_part(x) >= 0.0


class TestRelativeGap:
    def test_zero_gap(self):
        assert relative_gap(5.0, 5.0) == 0.0

    def test_positive_gap(self):
        assert relative_gap(1.1, 1.0) == pytest.approx(0.1)

    def test_symmetric_in_sign_of_difference(self):
        assert relative_gap(0.9, 1.0) == pytest.approx(relative_gap(1.1, 1.0))

    def test_zero_reference_uses_floor(self):
        assert relative_gap(1.0, 0.0) > 1.0

    @given(st.floats(min_value=0.1, max_value=1e5),
           st.floats(min_value=0.1, max_value=1e5))
    def test_always_non_negative(self, a, b):
        assert relative_gap(a, b) >= 0.0
