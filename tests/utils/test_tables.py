"""Tests for ASCII table rendering."""

from __future__ import annotations

from repro.utils.tables import format_table


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        table = format_table(("name", "value"), [("alpha", 1.5), ("beta", 2.0)])
        assert "name" in table
        assert "alpha" in table
        assert "1.5" in table

    def test_title_is_prepended(self):
        table = format_table(("a",), [(1,)], title="My table")
        assert table.splitlines()[0] == "My table"

    def test_column_widths_accommodate_long_cells(self):
        table = format_table(("x",), [("a-very-long-cell-value",)])
        lines = [line for line in table.splitlines() if line.startswith("|")]
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_float_formatting(self):
        table = format_table(("v",), [(0.123456789,)], float_fmt=".3f")
        assert "0.123" in table
        assert "0.123456789" not in table

    def test_empty_rows(self):
        table = format_table(("a", "b"), [])
        assert "a" in table and "b" in table

    def test_non_float_cells_are_stringified(self):
        table = format_table(("a",), [((1, 2),)])
        assert "(1, 2)" in table
