"""Tests for scalar minimisation helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.utils.optimize import golden_section_minimize, grid_refine_minimize


class TestGoldenSection:
    def test_quadratic_minimum(self):
        x, fx = golden_section_minimize(lambda x: (x - 2.0) ** 2, 0.0, 5.0)
        assert x == pytest.approx(2.0, abs=1e-6)
        assert fx == pytest.approx(0.0, abs=1e-10)

    def test_minimum_at_left_boundary(self):
        x, _ = golden_section_minimize(lambda x: x, 0.0, 1.0)
        assert x == pytest.approx(0.0, abs=1e-6)

    def test_minimum_at_right_boundary(self):
        x, _ = golden_section_minimize(lambda x: -x, 0.0, 1.0)
        assert x == pytest.approx(1.0, abs=1e-6)

    def test_degenerate_interval(self):
        x, fx = golden_section_minimize(lambda x: (x - 1.0) ** 2, 0.5, 0.5)
        assert x == pytest.approx(0.5)
        assert fx == pytest.approx(0.25)

    def test_swapped_bounds_are_normalised(self):
        x, _ = golden_section_minimize(lambda x: (x - 2.0) ** 2, 5.0, 0.0)
        assert x == pytest.approx(2.0, abs=1e-6)

    @given(st.floats(min_value=-5.0, max_value=5.0))
    def test_recovers_quadratic_vertex(self, center):
        x, _ = golden_section_minimize(lambda x: (x - center) ** 2, -10.0, 10.0)
        assert x == pytest.approx(center, abs=1e-5)


class TestGridRefine:
    def test_smooth_quadratic(self):
        x, _ = grid_refine_minimize(lambda x: (x - 0.3) ** 2, 0.0, 1.0)
        assert x == pytest.approx(0.3, abs=1e-6)

    def test_piecewise_objective_with_infeasible_region(self):
        def objective(x):
            if x > 0.7:
                return float("inf")
            return (x - 0.5) ** 2

        x, fx = grid_refine_minimize(objective, 0.0, 1.0)
        assert x == pytest.approx(0.5, abs=1e-5)
        assert fx == pytest.approx(0.0, abs=1e-9)

    def test_non_unimodal_objective_finds_global_cell(self):
        # Two valleys: x=0.1 (value 0.0) and x=0.9 (value 0.5).
        def objective(x):
            return min((x - 0.1) ** 2, (x - 0.9) ** 2 + 0.5)

        x, _ = grid_refine_minimize(objective, 0.0, 1.0, grid_points=101)
        assert x == pytest.approx(0.1, abs=1e-4)

    def test_degenerate_interval(self):
        x, fx = grid_refine_minimize(lambda x: x * x, 2.0, 2.0)
        assert x == 2.0
        assert fx == 4.0
