"""Tests for bracketing and bisection root finding."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ConvergenceError
from repro.utils.rootfind import bisect_root, expand_upper_bracket


class TestExpandUpperBracket:
    def test_finds_bracket_for_linear_function(self):
        hi = expand_upper_bracket(lambda x: x - 10.0, 0.0)
        assert hi >= 10.0

    def test_immediate_bracket(self):
        hi = expand_upper_bracket(lambda x: x, 0.0)
        assert hi > 0.0

    def test_raises_when_no_root_exists(self):
        with pytest.raises(ConvergenceError):
            expand_upper_bracket(lambda x: -1.0, 0.0, max_expansions=10)

    def test_respects_starting_point(self):
        hi = expand_upper_bracket(lambda x: x - 105.0, 100.0)
        assert hi >= 105.0


class TestBisectRoot:
    def test_linear_root(self):
        root = bisect_root(lambda x: x - 3.0, 0.0, 10.0)
        assert root == pytest.approx(3.0, abs=1e-9)

    def test_quadratic_root(self):
        root = bisect_root(lambda x: x * x - 2.0, 0.0, 2.0)
        assert root == pytest.approx(math.sqrt(2.0), abs=1e-9)

    def test_root_at_lower_endpoint(self):
        root = bisect_root(lambda x: x, 0.0, 1.0)
        assert root == pytest.approx(0.0, abs=1e-9)

    def test_root_at_upper_endpoint(self):
        root = bisect_root(lambda x: x - 1.0, 0.0, 1.0)
        assert root == pytest.approx(1.0, abs=1e-9)

    def test_raises_when_not_bracketed_below(self):
        with pytest.raises(ConvergenceError):
            bisect_root(lambda x: x + 5.0, 0.0, 1.0)

    def test_raises_when_not_bracketed_above(self):
        with pytest.raises(ConvergenceError):
            bisect_root(lambda x: x - 5.0, 0.0, 1.0)

    def test_flat_region_returns_leftmost_root_region(self):
        # f is 0 on [1, 2]; any point of the plateau is acceptable.
        def plateau(x):
            if x < 1.0:
                return x - 1.0
            if x > 2.0:
                return x - 2.0
            return 0.0

        root = bisect_root(plateau, 0.0, 3.0)
        assert 1.0 - 1e-6 <= root <= 2.0 + 1e-6

    @given(st.floats(min_value=-50.0, max_value=50.0),
           st.floats(min_value=0.1, max_value=10.0))
    def test_recovers_affine_roots(self, intercept, slope):
        target = intercept
        root = bisect_root(lambda x: slope * x - target, -1000.0, 1000.0)
        assert slope * root == pytest.approx(target, abs=1e-6)
