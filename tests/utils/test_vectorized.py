"""Tests for the vectorized numeric kernels (`repro.utils.vectorized`).

Covers the sorted-breakpoint level engine (scalar and batched), the exact
all-linear closed form, and the two kernel bug regressions: the NaN guard in
``vectorized_bisect`` and the frozen-row probing of ``expand_upper_brackets``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, ModelError
from repro.utils.vectorized import (
    expand_upper_brackets,
    piecewise_linear_level,
    piecewise_linear_levels,
    sorted_breakpoint_level,
    sorted_breakpoint_levels,
    vectorized_bisect,
)


# --------------------------------------------------------------------------- #
# The affine closed form
# --------------------------------------------------------------------------- #
class TestPiecewiseLinearLevels:
    def test_matches_scalar_solve_per_demand(self):
        rng = np.random.default_rng(0)
        weights = rng.uniform(0.2, 3.0, size=15)
        breaks = rng.uniform(0.0, 2.0, size=15)
        demands = np.array([0.0, 0.3, 1.7, 8.0, 42.0])
        levels = piecewise_linear_levels(weights, breaks, demands)
        for demand, level in zip(demands, levels):
            assert level == pytest.approx(
                piecewise_linear_level(weights, breaks, float(demand)),
                rel=1e-14)

    def test_rejects_bad_demands(self):
        with pytest.raises(ModelError):
            piecewise_linear_levels(np.ones(3), np.zeros(3), np.array([-1.0]))
        with pytest.raises(ModelError):
            piecewise_linear_levels(np.ones(3), np.zeros(3),
                                    np.array([[1.0, 2.0]]))


# --------------------------------------------------------------------------- #
# The generic sorted-breakpoint level engine
# --------------------------------------------------------------------------- #
def _affine_flow(weights, breaks):
    """Vectorized total filled flow of affine links at each level."""
    def flow(levels):
        levels = np.asarray(levels, dtype=float)
        return (np.maximum(levels[:, None] - breaks, 0.0) * weights).sum(axis=1)
    return flow


def _affine_dflow(weights, breaks):
    def dflow(levels):
        levels = np.asarray(levels, dtype=float)
        return ((levels[:, None] > breaks) * weights).sum(axis=1)
    return dflow


class TestSortedBreakpointLevel:
    weights = np.array([1.0, 0.5, 2.0, 0.25])
    breaks = np.array([0.0, 1.0, 1.0, 3.0])  # duplicate breakpoint on purpose

    def test_matches_exact_affine_solution(self):
        flow = _affine_flow(self.weights, self.breaks)
        for demand in (0.5, 1.0, 2.5, 7.0, 100.0):
            level = sorted_breakpoint_level(self.breaks, demand, flow)
            assert level == pytest.approx(
                piecewise_linear_level(self.weights, self.breaks, demand),
                rel=1e-10)

    def test_newton_hook_matches_bisection_only(self):
        flow = _affine_flow(self.weights, self.breaks)
        dflow = _affine_dflow(self.weights, self.breaks)
        for demand in (0.5, 2.5, 42.0):
            plain = sorted_breakpoint_level(self.breaks, demand, flow)
            newton = sorted_breakpoint_level(
                self.breaks, demand, flow,
                dflow=lambda x: float(dflow(np.array([x]))[0]))
            fused = sorted_breakpoint_level(
                self.breaks, demand, flow,
                flow_dflow=lambda x: (float(flow(np.array([x]))[0]),
                                      float(dflow(np.array([x]))[0])))
            assert newton == pytest.approx(plain, rel=1e-10)
            assert fused == pytest.approx(plain, rel=1e-10)

    def test_precomputed_grid_flows_path(self):
        flow = _affine_flow(self.weights, self.breaks)
        bp = np.unique(self.breaks)
        grid = flow(bp)
        for demand in (0.5, 2.5, 42.0):
            assert sorted_breakpoint_level(
                bp, demand, flow, grid_flows=grid) == pytest.approx(
                    sorted_breakpoint_level(self.breaks, demand, flow),
                    rel=1e-12)

    def test_extra_term_joins_the_solve(self):
        # Split the last link out of the closed form into the scalar hook.
        flow = _affine_flow(self.weights[:3], self.breaks[:3])

        def extra(level):
            return self.weights[3] * max(level - self.breaks[3], 0.0)

        for demand in (0.5, 2.5, 42.0):
            level = sorted_breakpoint_level(self.breaks, demand, flow,
                                            extra=extra)
            assert level == pytest.approx(
                piecewise_linear_level(self.weights, self.breaks, demand),
                rel=1e-10)

    def test_demand_above_top_breakpoint_expands(self):
        flow = _affine_flow(self.weights, self.breaks)
        level = sorted_breakpoint_level(self.breaks, 1e4, flow)
        assert level == pytest.approx(
            piecewise_linear_level(self.weights, self.breaks, 1e4), rel=1e-10)

    def test_zero_filled_demand_returns_smallest_breakpoint(self):
        flow = _affine_flow(self.weights, self.breaks)
        assert sorted_breakpoint_level(self.breaks, 0.0, flow) == \
            pytest.approx(float(self.breaks.min()))

    def test_saturating_flow_raises(self):
        # Total filled flow caps at 1.0: demand 2.0 can never be bracketed.
        def flow(levels):
            levels = np.asarray(levels, dtype=float)
            return 1.0 - np.exp(-np.maximum(levels, 0.0))

        with pytest.raises(ConvergenceError):
            sorted_breakpoint_level(np.array([0.0]), 2.0, flow,
                                    max_expansions=40)

    def test_nan_flow_raises(self):
        # The active segment is [0, 2] but the flow turns NaN above 1.0, so
        # the Newton/bisection loop must trip the finiteness guard rather
        # than silently half-stepping on a poisoned bracket.
        def flow(levels):
            levels = np.asarray(levels, dtype=float)
            with np.errstate(invalid="ignore"):
                return np.where(levels > 1.0, np.nan, levels)

        with pytest.raises(ConvergenceError):
            sorted_breakpoint_level(np.array([0.0, 2.0]), 1.5, flow)

    def test_rejects_negative_demand_and_bad_grid(self):
        flow = _affine_flow(self.weights, self.breaks)
        with pytest.raises(ModelError):
            sorted_breakpoint_level(self.breaks, -1.0, flow)
        with pytest.raises(ModelError):
            sorted_breakpoint_level(np.array([0.0, np.inf]), 1.0, flow)
        with pytest.raises(ModelError):
            sorted_breakpoint_level(np.array([0.0, 1.0]), 1.0, flow,
                                    grid_flows=np.zeros(3))


class TestSortedBreakpointLevels:
    weights = np.array([1.0, 0.5, 2.0, 0.25])
    breaks = np.array([0.0, 1.0, 1.0, 3.0])

    def test_matches_scalar_engine_per_demand(self):
        flow = _affine_flow(self.weights, self.breaks)
        dflow = _affine_dflow(self.weights, self.breaks)
        demands = np.array([0.0, 0.5, 1.0, 2.5, 7.0, 1e4])
        levels = sorted_breakpoint_levels(self.breaks, demands, flow, dflow)
        for demand, level in zip(demands, levels):
            assert level == pytest.approx(
                piecewise_linear_level(self.weights, self.breaks,
                                       float(demand)), rel=1e-10)

    def test_empty_batch(self):
        flow = _affine_flow(self.weights, self.breaks)
        dflow = _affine_dflow(self.weights, self.breaks)
        out = sorted_breakpoint_levels(self.breaks, np.empty(0), flow, dflow)
        assert out.shape == (0,)

    def test_rejects_bad_demands(self):
        flow = _affine_flow(self.weights, self.breaks)
        dflow = _affine_dflow(self.weights, self.breaks)
        with pytest.raises(ModelError):
            sorted_breakpoint_levels(self.breaks, np.array([-1.0]), flow,
                                     dflow)


# --------------------------------------------------------------------------- #
# Regression: NaN from func(mid) must raise, not collapse the bracket
# --------------------------------------------------------------------------- #
class TestVectorizedBisectNaNGuard:
    def test_nan_raises_convergence_error(self):
        # An M/M/1-style gap evaluated beyond its pole returns NaN.  Under
        # the old code ``NaN < 0`` is False, so ``hi := mid`` silently walked
        # the bracket onto the invalid region and "converged" to garbage.
        def gap(x):
            with np.errstate(invalid="ignore", divide="ignore"):
                return np.where(x >= 1.0, np.nan, 1.0 / (1.0 - x) - 10.0)

        with pytest.raises(ConvergenceError):
            vectorized_bisect(gap, np.array([0.0]), np.array([2.0]))

    def test_infinite_values_still_bisect(self):
        # +inf is a legitimate "above the root" signal and must keep working.
        def gap(x):
            with np.errstate(over="ignore"):
                return np.exp(x) - np.e

        root = vectorized_bisect(gap, np.array([0.0]), np.array([800.0]))
        assert root[0] == pytest.approx(1.0, abs=1e-9)

    def test_plain_roots_unaffected(self):
        roots = vectorized_bisect(lambda x: x - np.array([1.0, 2.0, 3.0]),
                                  np.zeros(3), np.full(3, 10.0))
        np.testing.assert_allclose(roots, [1.0, 2.0, 3.0], atol=1e-9)


# --------------------------------------------------------------------------- #
# Regression: frozen rows must not be re-evaluated at their frozen hi
# --------------------------------------------------------------------------- #
class TestExpandUpperBracketsFrozenRows:
    def test_frozen_row_is_not_probed_again(self):
        # Row 0 brackets immediately at hi = capacity (an M/M/1 row frozen
        # exactly at its domain boundary); row 1 needs several doublings.
        # The old code kept evaluating func(hi) on row 0 every iteration —
        # wasted work and a spurious domain probe at the boundary.  The fix
        # probes frozen rows at their known-good ``lo`` instead.
        capacity = 1.0
        probes_at_boundary = []

        def gap(x):
            probes_at_boundary.append(float(x[0]))
            out = np.array(x - 40.0, dtype=float)
            if np.isclose(x[0], capacity):
                out[0] = 0.0  # row 0 brackets exactly at its boundary
            return out

        hi = expand_upper_brackets(gap, np.array([0.0, 0.0]), initial=capacity)
        assert hi[0] == pytest.approx(capacity)
        assert hi[1] >= 40.0
        # Row 0 was probed at its boundary exactly once (the freezing
        # evaluation); every later iteration probed it at lo = 0.
        assert probes_at_boundary.count(capacity) == 1
        assert all(p == 0.0 for p in probes_at_boundary[1:])

    def test_mm1_row_frozen_at_capacity_raises_nothing(self):
        # End-to-end shape of the bug: one row's upper bracket sits at an
        # M/M/1 capacity where the latency cannot be evaluated, the other
        # row still needs expansion.  Old code re-evaluated the frozen row
        # at its boundary and blew up with a domain error.
        capacity = 2.0

        def gap(x):
            out = np.empty_like(x)
            # Row 0: an M/M/1 latency gap, +inf (bracketed) at capacity,
            # invalid beyond it.
            if x[0] > capacity:
                raise FloatingPointError("M/M/1 probed beyond capacity")
            with np.errstate(divide="ignore"):
                out[0] = np.inf if x[0] == capacity \
                    else 1.0 / (capacity - x[0]) - 100.0
            out[1] = x[1] - 33.0
            return out

        hi = expand_upper_brackets(gap, np.zeros(2), initial=capacity)
        assert hi[0] == pytest.approx(capacity)
        assert hi[1] >= 33.0

    def test_all_rows_expand_normally(self):
        hi = expand_upper_brackets(lambda x: x - np.array([3.0, 17.0]),
                                   np.zeros(2))
        assert hi[0] >= 3.0 and hi[1] >= 17.0

    def test_unbracketable_rows_raise(self):
        with pytest.raises(ConvergenceError):
            expand_upper_brackets(lambda x: np.full_like(x, -1.0),
                                  np.zeros(2), max_expansions=8)
