"""Equivalence of the migrated experiments with the legacy computations.

The legacy ``experiment_*`` bodies built instances ad hoc and called the
solvers directly; the study-backed plans must reproduce the same numbers.
These tests re-derive reference values the legacy way (direct ``solve`` /
``solve_many`` calls, direct internal functions) and compare them against
the records produced through the study pipeline, to 1e-9.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import ablation, experiments
from repro.analysis.studies import (
    build_experiment,
    experiment_ids,
    run_experiment,
)
from repro.api import SolveConfig, cache_stats, clear_cache, solve, solve_many
from repro.instances import (
    figure_4_example,
    grid_network,
    pigou,
    random_linear_parallel,
)
from repro.study import ArtifactStore


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestRegistryShape:
    def test_all_experiments_defined(self):
        assert experiment_ids() == [
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
            "E11", "E12", "E13", "E14", "E15", "E16", "A1", "A2", "A3"]

    def test_plans_carry_specs(self):
        plan = build_experiment("E1")
        assert plan.spec.num_cells == 1
        assert plan.experiment_id == "E1"


class TestAnalyticEquivalence:
    def test_e1_matches_the_paper_exactly(self):
        record = run_experiment("E1")
        assert record.all_claims_hold
        nash_row = record.rows[0]
        assert nash_row[1] == pytest.approx(1.0, abs=1e-9)
        assert nash_row[3] == pytest.approx(1.0, abs=1e-9)
        optimum_row = record.rows[1]
        assert optimum_row[1] == pytest.approx(0.5, abs=1e-9)
        assert optimum_row[3] == pytest.approx(0.75, abs=1e-9)

    def test_e2_beta_is_29_over_120(self):
        record = run_experiment("E2")
        assert record.all_claims_hold

    def test_e14_matches_direct_solves(self):
        record = run_experiment("E14", num_points=3)
        assert record.all_claims_hold
        demands = [float(d) for d in np.linspace(0.25, 2.5, 3)]
        clear_cache()
        for row, demand in zip(record.rows[:3], demands):
            direct = solve(pigou(demand), "optop")
            assert row[0] == "pigou"
            assert row[1] == pytest.approx(demand, abs=1e-12)
            assert row[2] == pytest.approx(direct.beta, abs=1e-9)
            assert row[3] == pytest.approx(direct.price_of_anarchy, abs=1e-9)
        clear_cache()
        for row, demand in zip(record.rows[3:], demands):
            direct = solve(figure_4_example(demand), "optop")
            assert row[0] == "figure 4"
            assert row[2] == pytest.approx(direct.beta, abs=1e-9)


class TestBatchEquivalence:
    def test_e4_family_statistics_match_direct_solve_many(self):
        record = run_experiment("E4", num_instances=3, num_links=4)
        assert record.all_claims_hold
        clear_cache()
        family = [random_linear_parallel(4, demand=2.0, seed=s)
                  for s in range(3)]
        reports = solve_many(family, "optop", max_workers=0)
        betas = np.asarray([r.beta for r in reports])
        linear_row = record.rows[0]
        assert linear_row[0] == "linear"
        assert linear_row[1] == pytest.approx(float(betas.mean()), abs=1e-9)
        assert linear_row[2] == pytest.approx(float(betas.min()), abs=1e-9)
        assert linear_row[3] == pytest.approx(float(betas.max()), abs=1e-9)

    def test_e5_matches_direct_mop_solve(self):
        record = run_experiment("E5", seeds=(0,))
        assert record.all_claims_hold
        clear_cache()
        direct = solve(grid_network(3, 3, demand=2.0, seed=0), "mop",
                       config=SolveConfig(compute_nash=False))
        grid_row = record.rows[0]
        assert grid_row[0] == "grid 3x3"
        assert grid_row[4] == pytest.approx(direct.beta, abs=1e-9)
        assert grid_row[5] == pytest.approx(direct.optimum_cost, abs=1e-9)
        assert grid_row[6] == pytest.approx(direct.induced_cost, abs=1e-9)


class TestDeprecatedWrappers:
    def test_wrappers_warn_and_match_run_experiment(self):
        with pytest.warns(DeprecationWarning, match="run_experiment"):
            legacy = experiments.experiment_pigou()
        fresh = run_experiment("E1")
        assert legacy.rows == fresh.rows
        assert legacy.claims == fresh.claims

    def test_wrappers_forward_keyword_arguments(self):
        with pytest.warns(DeprecationWarning):
            legacy = experiments.experiment_beta_vs_demand(num_points=3)
        assert len(legacy.rows) == 6

    def test_ablation_wrappers_warn(self):
        with pytest.warns(DeprecationWarning, match="run_experiment"):
            record = ablation.ablation_shortest_path_tolerance(
                tolerances=(1e-5, 1e-4), seeds=())
        assert record.all_claims_hold


class TestExperimentResume:
    def test_experiment_reruns_from_the_store_without_solving(self, tmp_path):
        store = ArtifactStore(tmp_path)
        first = run_experiment("E14", num_points=3, store=store)
        clear_cache()
        second = run_experiment("E14", num_points=3, store=store)
        assert cache_stats()["misses"] == 0, (
            "re-running a stored experiment must perform zero solver calls")
        assert first.rows == second.rows
        assert first.claims == second.claims

    def test_dependent_cells_resume_too(self, tmp_path):
        store = ArtifactStore(tmp_path)
        first = run_experiment("E4", num_instances=2, num_links=3,
                               store=store)
        clear_cache()
        second = run_experiment("E4", num_instances=2, num_links=3,
                                store=store)
        assert cache_stats()["misses"] == 0, (
            "the follow-up brute-force cell must be served from the store")
        assert first.rows == second.rows
