"""Cross-process races on one artifact key.

Two processes ``put`` the same key at the same moment (barrier-released).
The temp-file + ``os.replace`` write path must guarantee that afterwards

* exactly one artifact file exists for the key (no leftover temp files),
* the artifact parses as a valid report (no interleaved/corrupt bytes), and
* its content is exactly one of the two competing reports.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.api import SolveConfig, solve
from repro.api.report import SolveReport
from repro.instances import pigou
from repro.study.store import ArtifactStore

#: Distinct keys raced in turn; several rounds make the race window real.
ROUNDS = 6


def _distinct_report(tag: int) -> SolveReport:
    """A valid report whose metadata identifies the writing process."""
    base = solve(pigou(), "aloof",
                 config=SolveConfig(cache=False, compute_nash=False))
    from dataclasses import replace
    return replace(base, metadata={**base.metadata, "writer": tag})


def _race_put(root: str, key: str, tag: int, barrier, repeats: int) -> None:
    store = ArtifactStore(root)
    report = _distinct_report(tag)
    barrier.wait(timeout=30)
    for _ in range(repeats):
        store.put(key, report)


@pytest.mark.parametrize("round_index", range(ROUNDS))
def test_simultaneous_puts_leave_one_intact_artifact(tmp_path, round_index):
    root = tmp_path / "store"
    store = ArtifactStore(root)
    key = f"{round_index:02d}" + "ab" * 31  # 64 hex-ish chars, valid length
    barrier = multiprocessing.Barrier(2)
    workers = [
        multiprocessing.Process(target=_race_put,
                                args=(str(root), key, tag, barrier, 25))
        for tag in (1, 2)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=60)
        assert worker.exitcode == 0, "a racing writer crashed"

    # Exactly one surviving file, no temp-file debris.
    fanout = store.path_for(key).parent
    leftovers = sorted(p.name for p in fanout.iterdir())
    assert leftovers == [f"{key}.json"], f"unexpected files: {leftovers}"
    assert list(store.keys()) == [key]

    # The artifact is intact valid JSON and is one of the two writers'.
    report = store.get(key)
    assert report is not None
    assert report.metadata["writer"] in (1, 2)
    # And byte-level: the file parses standalone (not merely via the API)
    # as a checksum envelope wrapping exactly one writer's report.
    payload = json.loads(store.path_for(key).read_text(encoding="utf-8"))
    assert set(payload) == {"sha256", "report"}
    assert payload["report"]["strategy"] == "aloof"


def test_put_failure_leaves_no_temp_file(tmp_path):
    """A crashed write may lose the artifact but never leaves debris."""
    store = ArtifactStore(tmp_path / "store")
    key = "cd" * 32

    class Unserialisable(SolveReport):
        def to_json(self, *, indent=None):  # noqa: D102
            raise RuntimeError("boom mid-write")

    report = _distinct_report(0)
    broken = Unserialisable(**{name: getattr(report, name)
                               for name in report.__dataclass_fields__})
    with pytest.raises(RuntimeError):
        store.put(key, broken)
    fanout = store.path_for(key).parent
    assert not fanout.exists() or list(fanout.iterdir()) == []
    assert store.get(key) is None
