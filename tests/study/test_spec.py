"""Study specs: lazy expansion, determinism, serialisation."""

from __future__ import annotations

import itertools

import pytest

from repro.api.config import SolveConfig
from repro.exceptions import ModelError
from repro.study import GeneratorAxis, StudySpec


def demo_spec() -> StudySpec:
    return StudySpec(
        "demo",
        [GeneratorAxis("random_linear_parallel",
                       {"demand": 2.0},
                       grid={"num_links": [3, 4]},
                       seeds=(0, 1),
                       label="family-a"),
         GeneratorAxis("pigou", label="family-b")],
        strategies=("optop", "llf"),
        configs=(SolveConfig(alpha=0.5), SolveConfig(alpha=0.9)))


class TestExpansion:
    def test_num_cells_matches_expansion(self):
        spec = demo_spec()
        cells = list(spec.expand())
        # (2 grid points x 2 seeds + 1) instances x 2 strategies x 2 configs
        assert spec.num_cells == len(cells) == 5 * 2 * 2

    def test_plan_is_deterministic_and_indexed(self):
        spec = demo_spec()
        first = [c.to_dict() for c in spec.expand()]
        second = [c.to_dict() for c in spec.expand()]
        assert first == second
        assert [c["index"] for c in first] == list(range(len(first)))

    def test_expansion_is_lazy(self):
        spec = StudySpec(
            "huge",
            [GeneratorAxis("random_linear_parallel", {"num_links": 3},
                           grid={"demand": [float(d) for d in range(1, 1001)]},
                           seeds=range(100))])
        assert spec.num_cells == 100_000
        head = list(itertools.islice(spec.expand(), 3))
        assert [c.index for c in head] == [0, 1, 2]

    def test_axis_overrides_spec_strategies_and_configs(self):
        spec = StudySpec(
            "override",
            [GeneratorAxis("pigou", strategies=("mop",),
                           configs=(SolveConfig(compute_nash=False),)),
             GeneratorAxis("figure4")],
            strategies=("optop",))
        cells = list(spec.expand())
        assert [c.strategy for c in cells] == ["mop", "optop"]
        assert cells[0].config.compute_nash is False
        assert cells[1].config.compute_nash is True

    def test_cells_materialise_instances(self):
        spec = demo_spec()
        cell = next(spec.expand())
        instance = cell.make_instance()
        assert instance.num_links == 3

    def test_instances_enumerates_each_instance_once(self):
        spec = demo_spec()
        entries = list(spec.instances())
        assert len(entries) == 5
        labels = [axis.label for axis, _, _, _ in entries]
        assert labels == ["family-a"] * 4 + ["family-b"]

    def test_empty_strategies_yield_no_cells(self):
        spec = StudySpec("instances-only", [GeneratorAxis("pigou")],
                         strategies=())
        assert spec.num_cells == 0
        assert list(spec.expand()) == []
        assert len(list(spec.instances())) == 1


class TestParamFidelity:
    def test_empty_lists_and_pair_lists_round_trip_unchanged(self):
        # Canonical-JSON freezing must not confuse lists with mappings.
        params = {"weights": [], "pairs": [["fast", 2.0], ["slow", 1.0]],
                  "nested": {"a": [1, 2], "b": {}}}
        axis = GeneratorAxis("pigou", params)
        assert axis.to_dict()["params"] == params
        spec = StudySpec("fidelity", [axis], strategies=("optop",))
        cell = next(spec.expand())
        assert cell.params_dict == params
        clone = StudySpec.from_json(spec.to_json())
        assert next(clone.expand()).params_dict == params

    def test_grid_values_round_trip_unchanged(self):
        axis = GeneratorAxis("pigou", grid={"demand": [1.0, 2], "tags": [[]]})
        combos = list(axis.combinations())
        assert combos == [{"demand": 1.0, "tags": []},
                          {"demand": 2, "tags": []}]

    def test_non_json_params_rejected(self):
        with pytest.raises(ModelError, match="JSON"):
            GeneratorAxis("pigou", {"bad": object()})


class TestValidation:
    def test_overlapping_fixed_and_grid_params_rejected(self):
        with pytest.raises(ModelError, match="also fixed"):
            GeneratorAxis("pigou", {"demand": 1.0}, grid={"demand": [1, 2]})

    def test_empty_grid_values_rejected(self):
        with pytest.raises(ModelError, match="empty"):
            GeneratorAxis("pigou", grid={"demand": []})

    def test_validate_resolves_names(self):
        StudySpec("ok", [GeneratorAxis("pigou")]).validate()
        with pytest.raises(ModelError, match="unknown generator"):
            StudySpec("bad", [GeneratorAxis("bogus")]).validate()
        with pytest.raises(Exception, match="unknown strategy"):
            StudySpec("bad", [GeneratorAxis("pigou")],
                      strategies=("bogus",)).validate()


class TestSerialisation:
    def test_json_round_trip_preserves_plan_and_digest(self):
        spec = demo_spec()
        clone = StudySpec.from_json(spec.to_json())
        assert clone.digest() == spec.digest()
        assert ([c.to_dict() for c in clone.expand()]
                == [c.to_dict() for c in spec.expand()])

    def test_digest_changes_with_the_plan(self):
        spec = demo_spec()
        other = spec.with_configs([SolveConfig(alpha=0.25)])
        assert other.digest() != spec.digest()

    def test_axis_round_trip_keeps_overrides(self):
        axis = GeneratorAxis("pigou", strategies=("mop",),
                             configs=(SolveConfig(compute_nash=False),),
                             label="x")
        clone = GeneratorAxis.from_dict(axis.to_dict())
        assert clone == axis
