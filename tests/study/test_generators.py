"""Generator registry: round trips, schema validation, digest stability."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.exceptions import ModelError
from repro.instances import pigou, random_linear_parallel
from repro.serialization import instance_digest, instance_to_dict
from repro.study import (
    GENERATORS,
    available_generators,
    generator_schema,
    get_generator,
    make_instance,
    register_generator,
    validate_params,
)

#: Every factory of repro.instances must be registered.
EXPECTED_GENERATORS = {
    "pigou", "pigou_nonlinear", "figure4", "two_speed", "braess",
    "roughgarden", "random_linear_parallel", "random_affine_common_slope",
    "random_polynomial_parallel", "random_mixed_parallel", "mm1_server_farm",
    "random_mm1_parallel", "grid_network", "layered_network",
    "random_multicommodity", "literal",
}


class TestRegistry:
    def test_every_instance_factory_is_registered(self):
        assert EXPECTED_GENERATORS <= set(available_generators())

    def test_unknown_generator_lists_alternatives(self):
        with pytest.raises(ModelError, match="registered generators"):
            get_generator("nope")

    def test_register_and_unregister_custom_generator(self):
        @register_generator("two_pigous", seeded=False, schema={
            "type": "object",
            "properties": {"demand": {"type": "number",
                                      "exclusiveMinimum": 0}},
        })
        def two_pigous(demand=1.0):
            """Two Pigou copies glued by demand."""
            return pigou(demand)

        try:
            inst = make_instance("two_pigous", {"demand": 2.0})
            assert inst.demand == pytest.approx(2.0)
            entry = get_generator("two_pigous")
            assert not entry.seeded
            assert entry.description.startswith("Two Pigou copies")
        finally:
            GENERATORS.unregister("two_pigous")
        assert "two_pigous" not in GENERATORS

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ModelError, match="already registered"):
            register_generator("pigou", lambda: None)

    def test_schema_is_a_copy(self):
        schema = generator_schema("random_linear_parallel")
        schema["properties"].clear()
        assert generator_schema("random_linear_parallel")["properties"]


class TestParamValidation:
    def test_unknown_param_rejected(self):
        with pytest.raises(ModelError, match="unknown parameters"):
            make_instance("pigou", {"bogus": 1})

    def test_missing_required_param_rejected(self):
        with pytest.raises(ModelError, match="required"):
            make_instance("random_linear_parallel", {})

    def test_type_mismatch_rejected(self):
        with pytest.raises(ModelError, match="type"):
            make_instance("random_linear_parallel",
                          {"num_links": "four"})

    def test_bound_violation_rejected(self):
        with pytest.raises(ModelError, match=">="):
            make_instance("random_linear_parallel", {"num_links": 0})
        with pytest.raises(ModelError, match=">"):
            make_instance("pigou", {"demand": 0.0})

    def test_array_params_validated_and_coerced_to_tuples(self):
        inst = make_instance("random_linear_parallel",
                             {"num_links": 3, "slope_range": [1.0, 2.0]},
                             seed=4)
        assert inst.num_links == 3
        with pytest.raises(ModelError, match="items"):
            validate_params(generator_schema("random_linear_parallel"),
                            {"num_links": 3, "slope_range": [1.0]})

    def test_enum_validated(self):
        with pytest.raises(ModelError, match="one of"):
            make_instance("grid_network",
                          {"rows": 2, "cols": 2, "latency_family": "cubic"})


class TestRoundTrip:
    def test_params_to_instance_matches_direct_factory_call(self):
        direct = random_linear_parallel(5, demand=2.0, seed=9)
        via_registry = make_instance("random_linear_parallel",
                                     {"num_links": 5, "demand": 2.0}, seed=9)
        assert instance_digest(direct) == instance_digest(via_registry)

    def test_unseeded_generators_ignore_the_seed(self):
        a = make_instance("figure4", {}, seed=0)
        b = make_instance("figure4", {}, seed=123)
        assert instance_digest(a) == instance_digest(b)

    def test_literal_generator_round_trips_any_instance(self):
        original = random_linear_parallel(4, demand=1.5, seed=2)
        rebuilt = make_instance("literal",
                                {"instance": instance_to_dict(original)})
        assert instance_digest(rebuilt) == instance_digest(original)

    def test_literal_demand_override(self):
        rebuilt = make_instance(
            "literal", {"instance": instance_to_dict(pigou()), "demand": 3.0})
        assert rebuilt.demand == pytest.approx(3.0)

    def test_literal_network_round_trips_tuple_node_names(self):
        from repro.instances import grid_network

        original = grid_network(3, 3, demand=2.0, seed=1)
        rebuilt = make_instance("literal",
                                {"instance": instance_to_dict(original)})
        assert instance_digest(rebuilt) == instance_digest(original)


class TestCrossProcessDigestStability:
    def test_digest_stable_across_processes(self):
        """params -> instance -> digest is identical in a fresh interpreter."""
        params = {"num_links": 6, "demand": 2.5}
        local = instance_digest(
            make_instance("random_linear_parallel", params, seed=13))
        src = Path(__file__).resolve().parents[2] / "src"
        script = (
            "from repro.study import make_instance\n"
            "from repro.serialization import instance_digest\n"
            "inst = make_instance('random_linear_parallel', "
            "{'num_links': 6, 'demand': 2.5}, seed=13)\n"
            "print(instance_digest(inst))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"}, check=True)
        assert result.stdout.strip() == local
