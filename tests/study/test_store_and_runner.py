"""Artifact store and study runner: resume semantics, counters, export."""

from __future__ import annotations

import pytest

from repro.api import (
    SolveConfig,
    cache_stats,
    clear_cache,
    register_strategy,
    solve,
)
from repro.api.registry import REGISTRY
from repro.exceptions import ModelError
from repro.instances import pigou
from repro.study import (
    ArtifactStore,
    GeneratorAxis,
    StudySpec,
    artifact_key,
    get_named_study,
    run_study,
    solve_cell,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def small_spec(num_seeds: int = 4) -> StudySpec:
    return StudySpec(
        "small",
        [GeneratorAxis("random_linear_parallel",
                       {"num_links": 4, "demand": 2.0},
                       seeds=range(num_seeds))],
        strategies=("optop",))


class TestArtifactStore:
    def test_put_get_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        report = solve(pigou(), "optop")
        key = artifact_key("digest", "optop", SolveConfig())
        store.put(key, report)
        assert key in store
        loaded = store.get(key)
        assert loaded == report
        assert store.stats() == {"hits": 1, "misses": 0, "writes": 1,
                                 "skipped_writes": 0, "corrupt": 0}

    def test_miss_counts_and_returns_none(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get("ab" * 32) is None
        assert store.stats()["misses"] == 1

    def test_corrupt_artifact_is_quarantined_as_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        key = artifact_key("digest", "optop", SolveConfig())
        path = store.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        assert store.get(key) is None
        stats = store.stats()
        assert stats["corrupt"] == 1
        assert stats["misses"] == 1
        # The damaged file was renamed aside, so the key is now absent and
        # the next put lands a fresh artifact.
        assert not path.exists()
        quarantined = list(store.quarantined())
        assert len(quarantined) == 1
        assert quarantined[0].name == f"{path.name}.corrupt.0"

    def test_truncated_artifact_is_a_miss(self, tmp_path):
        # Regression: a torn write (zero-byte or half-written JSON) used to
        # raise JSONDecodeError out of the cache read path.
        store = ArtifactStore(tmp_path)
        report = solve(pigou(), "optop")
        key = artifact_key("digest", "optop", SolveConfig())
        path = store.put(key, report)
        full = path.read_text(encoding="utf-8")
        path.write_text(full[:len(full) // 2], encoding="utf-8")
        assert store.get(key) is None
        assert store.stats()["corrupt"] == 1
        path.write_text("", encoding="utf-8")  # zero-byte variant
        assert store.get(key) is None
        assert store.stats()["corrupt"] == 2
        assert len(list(store.quarantined())) == 2

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        report = solve(pigou(), "optop")
        key = artifact_key("digest", "optop", SolveConfig())
        path = store.put(key, report)
        import json as _json
        payload = _json.loads(path.read_text(encoding="utf-8"))
        assert set(payload) == {"sha256", "report"}
        payload["report"]["beta"] = 123.456  # silent bit rot
        path.write_text(_json.dumps(payload), encoding="utf-8")
        assert store.get(key) is None
        assert store.stats()["corrupt"] == 1

    def test_legacy_raw_artifact_still_loads(self, tmp_path):
        # Artifacts written before the checksum envelope are bare
        # SolveReport objects; they must keep loading.
        import json as _json
        store = ArtifactStore(tmp_path)
        report = solve(pigou(), "optop")
        key = artifact_key("digest", "optop", SolveConfig())
        path = store.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(_json.dumps(report.to_dict()), encoding="utf-8")
        assert store.get(key) == report
        assert store.stats()["corrupt"] == 0

    def test_keys_and_delete(self, tmp_path):
        store = ArtifactStore(tmp_path)
        report = solve(pigou(), "optop")
        keys = [artifact_key(f"digest{i}", "optop", SolveConfig())
                for i in range(3)]
        for key in keys:
            store.put(key, report)
        assert len(store) == 3
        assert set(store.keys()) == set(keys)
        assert store.delete(keys[0]) is True
        assert store.delete(keys[0]) is False
        assert len(store) == 2

    def test_key_depends_on_every_component(self):
        base = artifact_key("d", "optop", SolveConfig())
        assert artifact_key("e", "optop", SolveConfig()) != base
        assert artifact_key("d", "mop", SolveConfig()) != base
        assert artifact_key("d", "optop", SolveConfig(alpha=0.5)) != base


class TestRunStudy:
    def test_cold_run_solves_every_cell(self, tmp_path):
        store = ArtifactStore(tmp_path)
        study = run_study(small_spec(), store=store)
        assert len(study) == 4
        assert study.store_hits == 0
        assert study.solver_calls == 4
        assert not study.fully_resumed
        assert all(r.source == "solver" for r in study)

    def test_resume_is_zero_solver_calls(self, tmp_path):
        store = ArtifactStore(tmp_path)
        cold = run_study(small_spec(), store=store)
        clear_cache()  # only the artifacts may serve the second run
        warm = run_study(small_spec(), store=store)
        assert warm.fully_resumed
        assert warm.store_hits == 4
        assert cache_stats() == {"hits": 0, "misses": 0}
        assert [r.report.beta for r in warm] == [r.report.beta for r in cold]
        assert all(r.source == "store" for r in warm)

    def test_deleting_one_artifact_resolves_exactly_one_cell(self, tmp_path):
        calls = []

        @register_strategy("counting_study_stub")
        def counting_stub(instance, config):
            calls.append(1)
            return solve(instance, "aloof",
                         config=SolveConfig(cache=False, compute_nash=False))

        try:
            spec = StudySpec(
                "count",
                [GeneratorAxis("random_linear_parallel",
                               {"num_links": 3, "demand": 1.0},
                               seeds=range(4))],
                strategies=("counting_study_stub",),
                configs=(SolveConfig(compute_nash=False),))
            store = ArtifactStore(tmp_path)
            study = run_study(spec, store=store)
            assert len(calls) == 4

            store.delete(study.results[1].artifact_key)
            clear_cache()
            again = run_study(spec, store=store)
            assert len(calls) == 5, "exactly one solver call after deletion"
            assert again.store_hits == 3
            assert again.solver_calls == 1
        finally:
            REGISTRY.unregister("counting_study_stub")

    def test_runs_without_a_store(self):
        study = run_study(small_spec(2))
        assert len(study) == 2
        assert study.store_hits == 0 and study.store_misses == 0

    def test_in_batch_duplicates_served_by_session_cache(self):
        # Two axes producing the same instance: one solver call, one hit.
        spec = StudySpec("dups", [GeneratorAxis("pigou"),
                                  GeneratorAxis("pigou")],
                         strategies=("optop",))
        study = run_study(spec)
        assert study.solver_calls == 1
        assert study.cache_hits == 1

    def test_reregistered_strategy_bypasses_the_store(self, tmp_path):
        # Artifacts are addressed by strategy *name*; a re-registered
        # implementation must not resume the old implementation's results.
        @register_strategy("regen_stub")
        def v1(instance, config):
            return solve(instance, "aloof",
                         config=SolveConfig(cache=False, compute_nash=False))

        spec = StudySpec("regen", [GeneratorAxis("pigou")],
                         strategies=("regen_stub",))
        store = ArtifactStore(tmp_path)
        try:
            first = run_study(spec, store=store)
            assert first.results[0].report.strategy == "aloof"
            assert len(store) == 1
        finally:
            REGISTRY.unregister("regen_stub")

        @register_strategy("regen_stub")
        def v2(instance, config):
            return solve(instance, "optop",
                         config=SolveConfig(cache=False, compute_nash=False))

        try:
            clear_cache()
            second = run_study(spec, store=store)
            assert second.results[0].report.strategy == "optop", \
                "stale artifact served for a re-registered strategy"
            assert second.store_hits == 0
        finally:
            REGISTRY.unregister("regen_stub")

    def test_cache_free_cells_bypass_the_store(self, tmp_path):
        # cache=False means "never reuse results" — timing cells must not
        # be served from (or written to) the artifact store either.
        spec = StudySpec(
            "timing-store",
            [GeneratorAxis("random_linear_parallel",
                           {"num_links": 3, "demand": 1.0}, seeds=(0,))],
            strategies=("optop",),
            configs=(SolveConfig(cache=False, compute_nash=False),))
        store = ArtifactStore(tmp_path)
        first = run_study(spec, store=store)
        assert len(store) == 0
        second = run_study(spec, store=store)
        assert second.solver_calls == 1
        assert not second.fully_resumed

    def test_cache_free_cells_count_as_solver_calls(self):
        # A cache-disabled config never touches the session counters; the
        # study must still report its executions truthfully.
        spec = StudySpec(
            "timing",
            [GeneratorAxis("random_linear_parallel",
                           {"num_links": 3, "demand": 1.0}, seeds=range(3))],
            strategies=("optop",),
            configs=(SolveConfig(cache=False, compute_nash=False),))
        study = run_study(spec)
        assert study.solver_calls == 3
        assert not study.fully_resumed
        assert study.to_dict()["counters"]["uncached_calls"] == 3

    def test_unknown_strategy_fails_before_solving(self):
        spec = StudySpec("bad", [GeneratorAxis("pigou")],
                         strategies=("bogus",))
        with pytest.raises(Exception, match="unknown strategy"):
            run_study(spec)


class TestSolveCell:
    def test_dependent_cell_resumes_through_the_store(self, tmp_path):
        store = ArtifactStore(tmp_path)
        config = SolveConfig(compute_nash=False)
        first = solve_cell(pigou(), "optop", config, store=store)
        before = cache_stats()
        clear_cache()
        second = solve_cell(pigou(), "optop", config, store=store)
        assert second == first
        assert cache_stats()["misses"] == 0
        assert store.stats()["hits"] >= 1


class TestStudyReport:
    def test_select_and_one(self, tmp_path):
        study = run_study(small_spec())
        assert len(study.select(strategy="optop")) == 4
        assert study.one(seed=2).cell.seed == 2
        with pytest.raises(LookupError):
            study.one(strategy="optop")

    def test_table_csv_json_export(self, tmp_path):
        study = run_study(small_spec(2))
        table = study.to_table()
        assert "Study 'small'" in table
        csv_path = tmp_path / "cells.csv"
        text = study.to_csv(csv_path)
        assert csv_path.read_text(encoding="utf-8") == text
        assert text.splitlines()[0].startswith("index,generator")
        assert len(text.splitlines()) == 3
        payload = study.to_json(tmp_path / "study.json")
        assert (tmp_path / "study.json").exists()
        assert '"solver_calls"' in payload


class TestNamedStudies:
    def test_smoke_study_runs_and_resumes(self, tmp_path):
        spec = get_named_study("smoke", num_instances=3)
        store = ArtifactStore(tmp_path)
        cold = run_study(spec, store=store)
        assert len(cold) == 3
        clear_cache()
        warm = run_study(spec, store=store)
        assert warm.fully_resumed

    def test_unknown_named_study_rejected(self):
        with pytest.raises(ModelError, match="named studies"):
            get_named_study("nope")
