"""The documentation site must stay structurally sound.

CI builds the real site with ``mkdocs build --strict`` (the ``docs`` job);
this suite runs the dependency-free structural subset
(:mod:`scripts.check_docs`) so a broken nav entry, a dangling link, a
non-importing autodoc target or an undocumented example fails the fast
test lane too.
"""

from __future__ import annotations

import pathlib
import sys

import pytest

yaml = pytest.importorskip("yaml", reason="the docs checks parse mkdocs.yml")

ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(ROOT / "scripts"))

from check_docs import DOCS, MKDOCS_YML, _nav_pages, check_docs  # noqa: E402


def test_structural_check_passes():
    problems = check_docs()
    assert not problems, "\n".join(problems)


def test_mkdocs_config_is_strict_with_material_and_mkdocstrings():
    config = yaml.safe_load(MKDOCS_YML.read_text(encoding="utf-8"))
    assert config["strict"] is True
    assert config["theme"]["name"] == "material"
    plugin_names = [p if isinstance(p, str) else next(iter(p))
                    for p in config["plugins"]]
    assert "mkdocstrings" in plugin_names


def test_site_documents_every_layer():
    nav = _nav_pages(yaml.safe_load(
        MKDOCS_YML.read_text(encoding="utf-8"))["nav"])
    for page in ("subsystems/instances.md", "subsystems/latency.md",
                 "subsystems/equilibrium.md", "subsystems/core.md",
                 "subsystems/api.md", "subsystems/study.md",
                 "subsystems/serve.md", "subsystems/scenarios.md",
                 "subsystems/analysis.md"):
        assert page in nav, f"subsystem page {page} missing from the nav"
    assert "notation.md" in nav
    assert "architecture.md" in nav


def test_architecture_page_names_all_five_layers():
    text = (DOCS / "architecture.md").read_text(encoding="utf-8")
    for module in ("repro.instances", "repro.equilibrium", "repro.api",
                   "repro.study", "repro.serve", "repro.scenarios"):
        assert module in text, f"architecture page does not mention {module}"


def test_notation_glossary_covers_the_core_symbols():
    text = (DOCS / "notation.md").read_text(encoding="utf-8")
    for symbol in ("OpTop", "MOP", "LLF", "SCALE", "price_of_optimum",
                   "water_fill", "price_of_anarchy", "solve_elastic"):
        assert symbol in text, f"notation glossary misses {symbol}"
