"""Smoke-run every example script (the docs gallery's executable half).

The examples double as documentation: each module docstring is rendered
into the docs gallery (``docs/examples.md``), and this suite — in the slow
CI lane (``-m slow``) — executes every script end to end so the gallery
can never describe code that no longer runs.  The fast-lane structural
checks (docstring present, gallery entry present) live in
``tests/integration/test_examples_structure.py`` and ``tests/docs/``.
"""

from __future__ import annotations

import pathlib
import runpy

import pytest

pytestmark = pytest.mark.slow

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_smoke_runs(script, capsys, tmp_path, monkeypatch):
    # Run from a scratch directory: examples that write artifacts (the
    # study pipeline, traces) must not litter the repository.
    monkeypatch.chdir(tmp_path)
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"
