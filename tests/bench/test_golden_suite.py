"""Golden regression fixture for the built-in ``small`` benchmark suite.

The whole certified gap table — instance digests, costs, MILP lower
bounds and per-strategy gaps — is pinned to
``tests/fixtures/golden/suite_small.json``.  Digests are compared
exactly (drift means the generators changed construction), numerics with
the repo's 1e-9 golden comparator.  A deliberate change is committed
with ``pytest --update-golden`` (see tests/README.md).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import pytest

from repro.bench import get_suite, run_suite

GOLDEN_PATH = (Path(__file__).resolve().parents[1] / "fixtures" / "golden"
               / "suite_small.json")

#: Relative/absolute tolerance of the golden comparator.
TOL = 1e-9

NUMERIC_FIELDS = ("cost", "exact_cost", "lower_bound", "gap",
                  "certified_gap")


def _numbers_match(measured: float, pinned: float) -> bool:
    if math.isnan(measured) or math.isnan(pinned):
        return math.isnan(measured) and math.isnan(pinned)
    return abs(measured - pinned) <= TOL + TOL * max(abs(measured),
                                                     abs(pinned))


def _golden_payload(report) -> dict:
    """The pinned subset of a SuiteReport (no timings, no counters)."""
    return {
        "suite": report.suite.name,
        "version": report.suite.version,
        "suite_digest": report.suite.digest(),
        "rows": {
            row.key: {
                "instance_digest": row.instance_digest,
                **{field: getattr(row, field) for field in NUMERIC_FIELDS},
            }
            for row in report.rows
        },
    }


@pytest.fixture(scope="module")
def small_report():
    return run_suite(get_suite("small"))


def test_small_suite_matches_golden(small_report, update_golden):
    payload = _golden_payload(small_report)
    if update_golden:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
        return
    assert GOLDEN_PATH.exists(), (
        f"missing golden fixture {GOLDEN_PATH}; generate it with "
        f"pytest --update-golden")
    pinned = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
    assert payload["suite"] == pinned["suite"]
    assert payload["version"] == pinned["version"]
    assert payload["suite_digest"] == pinned["suite_digest"], \
        "suite spec changed; bump the version and rerun with --update-golden"
    assert sorted(payload["rows"]) == sorted(pinned["rows"]), \
        "the set of (entry, seed, strategy) rows changed"
    for key, pinned_row in pinned["rows"].items():
        row = payload["rows"][key]
        assert row["instance_digest"] == pinned_row["instance_digest"], (
            f"{key}: instance digest drifted — the generator's construction "
            f"or seeding changed")
        for field in NUMERIC_FIELDS:
            assert _numbers_match(row[field], pinned_row[field]), (
                f"{key}: {field} = {row[field]!r} drifted from golden "
                f"{pinned_row[field]!r} beyond {TOL:g}")


def test_golden_gaps_stay_certified(small_report):
    """Every fixed-budget row must keep its unconditional certificate.

    ``optop`` is exempt: it runs its own budget ``beta``, so the alpha-0.5
    lower bound does not bind it (its gaps may legitimately be negative).
    """
    for row in small_report.rows:
        if row.strategy == "optop":
            continue
        assert row.lower_bound <= row.cost + 1e-9
        assert row.certified_gap >= -1e-12
