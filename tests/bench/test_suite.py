"""Tests for the benchmark suite runner (:mod:`repro.bench.suite`)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import (
    SuiteEntry,
    SuiteSpec,
    available_suites,
    baseline_payload,
    get_suite,
    run_suite,
    verify_suite,
)
from repro.exceptions import ModelError
from repro.study import ArtifactStore


def tiny_spec(**overrides) -> SuiteSpec:
    """A 2-instance, 3-strategy suite that solves in well under a second."""
    defaults = dict(
        version=1,
        strategies=("exact", "llf", "aloof"),
        alpha=0.5,
        gap_tolerance=1e-3,
        description="test suite",
    )
    defaults.update(overrides)
    return SuiteSpec(
        "tiny",
        [SuiteEntry("neardeg", "near_degenerate_breakpoints",
                    {"num_links": 3, "demand": 1.5}, seeds=(0, 1))],
        **defaults)


@pytest.fixture(scope="module")
def tiny_report():
    return run_suite(tiny_spec())


class TestSuiteEntry:
    def test_params_are_canonicalised(self):
        a = SuiteEntry("x", "g", {"b": 1, "a": 2})
        b = SuiteEntry("x", "g", {"a": 2, "b": 1})
        assert a.params == b.params == '{"a":2,"b":1}'

    def test_round_trip(self):
        entry = SuiteEntry("x", "pigou_chain", {"num_blocks": 2},
                           seeds=(0, 3))
        assert SuiteEntry.from_dict(entry.to_dict()) == entry

    def test_rejects_empty_label_and_seeds(self):
        with pytest.raises(ModelError):
            SuiteEntry("", "g")
        with pytest.raises(ModelError):
            SuiteEntry("x", "g", seeds=())

    def test_rejects_non_json_params(self):
        with pytest.raises(ModelError):
            SuiteEntry("x", "g", {"bad": object()})


class TestSuiteSpec:
    def test_baseline_strategy_always_included(self):
        spec = tiny_spec(strategies=("llf", "aloof"))
        assert spec.strategies[0] == "exact"
        assert spec.num_cells == 2 * 3

    def test_duplicate_labels_rejected(self):
        entry = SuiteEntry("dup", "pigou_chain", {"num_blocks": 1})
        with pytest.raises(ModelError):
            SuiteSpec("s", [entry, entry])

    @pytest.mark.parametrize("overrides", [
        {"version": 0},
        {"alpha": 1.5},
        {"gap_tolerance": -1.0},
    ])
    def test_invalid_fields_rejected(self, overrides):
        with pytest.raises(ModelError):
            tiny_spec(**overrides)

    def test_round_trip_and_digest(self):
        spec = tiny_spec()
        clone = SuiteSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()
        assert clone.digest() == spec.digest()

    def test_digest_sensitive_to_version(self):
        assert tiny_spec().digest() != tiny_spec(version=2).digest()

    def test_validate_resolves_names(self):
        tiny_spec().validate()
        bad = SuiteSpec("s", [SuiteEntry("x", "no_such_generator")])
        with pytest.raises(ModelError):
            bad.validate()


class TestRunSuite:
    def test_rows_cover_the_grid(self, tiny_report):
        spec = tiny_report.suite
        assert len(tiny_report.rows) == spec.num_cells
        keys = {row.key for row in tiny_report.rows}
        assert keys == {f"neardeg/s{seed}/{strategy}"
                        for seed in (0, 1)
                        for strategy in spec.strategies}

    def test_exact_rows_have_zero_gap(self, tiny_report):
        for seed in (0, 1):
            row = tiny_report.row(f"neardeg/s{seed}/exact")
            assert row.gap == 0.0
            assert row.cost == row.exact_cost
            assert row.certified_gap >= 0.0

    def test_exact_dominates_other_strategies(self, tiny_report):
        for row in tiny_report.rows:
            assert row.cost >= row.exact_cost - 1e-9
            assert row.lower_bound <= row.cost + 1e-9

    def test_max_gap(self, tiny_report):
        assert tiny_report.max_gap("aloof") >= tiny_report.max_gap("exact")
        with pytest.raises(ModelError):
            tiny_report.max_gap("no_such_strategy")

    def test_empty_suite_rejected(self):
        with pytest.raises(ModelError):
            run_suite(SuiteSpec("empty"))

    def test_exports(self, tiny_report, tmp_path):
        payload = json.loads(tiny_report.to_json(tmp_path / "report.json"))
        assert payload["suite"]["name"] == "tiny"
        assert len(payload["rows"]) == len(tiny_report.rows)
        csv_text = tiny_report.to_csv(tmp_path / "report.csv")
        assert csv_text.count("\n") == len(tiny_report.rows) + 1
        assert (tmp_path / "report.json").exists()
        assert (tmp_path / "report.csv").exists()
        assert "Suite 'tiny'" in tiny_report.to_table()


class TestResume:
    def test_second_run_makes_zero_solver_calls(self, tmp_path):
        from repro.api import clear_cache

        spec = tiny_spec()
        store = ArtifactStore(tmp_path / "store")
        clear_cache()  # the module fixture warmed the in-process cache
        first = run_suite(spec, store=store)
        assert first.solver_calls == spec.num_cells
        assert not first.fully_resumed
        second = run_suite(spec, store=store)
        assert second.solver_calls == 0
        assert second.fully_resumed
        assert [row.to_dict() for row in second.rows] == \
            [row.to_dict() for row in first.rows]


class TestVerify:
    def test_clean_run_passes(self, tiny_report):
        assert verify_suite(tiny_report, baseline_payload(tiny_report)) == []

    def test_baseline_file_round_trip(self, tiny_report, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline_payload(tiny_report)))
        assert verify_suite(tiny_report, path) == []

    def test_digest_drift_detected(self, tiny_report):
        baseline = copy.deepcopy(baseline_payload(tiny_report))
        key = tiny_report.rows[0].key
        baseline["entries"][key]["digest"] = "0" * 64
        violations = verify_suite(tiny_report, baseline)
        assert len(violations) == 1 and "drifted" in violations[0]

    def test_gap_regression_detected(self, tiny_report):
        baseline = copy.deepcopy(baseline_payload(tiny_report))
        key = next(row.key for row in tiny_report.rows
                   if row.strategy == "aloof" and row.gap > 0)
        baseline["entries"][key]["gap"] = \
            tiny_report.row(key).gap - 2 * tiny_report.suite.gap_tolerance
        violations = verify_suite(tiny_report, baseline)
        assert len(violations) == 1 and "regressed" in violations[0]

    def test_gap_improvement_passes(self, tiny_report):
        baseline = copy.deepcopy(baseline_payload(tiny_report))
        for pinned in baseline["entries"].values():
            pinned["gap"] += 1.0  # every measured gap is now far better
        assert verify_suite(tiny_report, baseline) == []

    def test_missing_row_detected(self, tiny_report):
        baseline = copy.deepcopy(baseline_payload(tiny_report))
        baseline["entries"]["neardeg/s9/exact"] = {"digest": "x", "gap": 0.0}
        violations = verify_suite(tiny_report, baseline)
        assert len(violations) == 1 and "missing" in violations[0]

    def test_name_and_version_mismatch_short_circuit(self, tiny_report):
        baseline = copy.deepcopy(baseline_payload(tiny_report))
        baseline["suite"] = "other"
        baseline["version"] = 9
        violations = verify_suite(tiny_report, baseline)
        assert len(violations) == 2

    def test_invalid_baseline_rejected(self, tiny_report, tmp_path):
        with pytest.raises(ModelError):
            verify_suite(tiny_report, {"no": "entries"})
        with pytest.raises(ModelError):
            verify_suite(tiny_report, tmp_path / "nope.json")


class TestBuiltinSuites:
    def test_small_is_available(self):
        assert "small" in available_suites()
        spec = get_suite("small")
        spec.validate()
        assert spec.baseline_strategy == "exact"
        assert spec.num_cells == spec.num_instances * len(spec.strategies)

    def test_unknown_suite_raises(self):
        with pytest.raises(ModelError):
            get_suite("no_such_suite")
