"""Tests for the ``repro bench suite`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.bench import SuiteEntry, SuiteSpec
from repro.bench import suite as suite_module
from repro.cli import main


@pytest.fixture(autouse=True)
def tiny_builtin_suite(monkeypatch):
    """Register a fast two-instance suite so CLI runs stay sub-second."""
    def build() -> SuiteSpec:
        return SuiteSpec(
            "tinycli",
            [SuiteEntry("neardeg", "near_degenerate_breakpoints",
                        {"num_links": 3, "demand": 1.5}, seeds=(0, 1))],
            strategies=("exact", "llf", "aloof"),
            description="CLI test suite")

    monkeypatch.setitem(suite_module.SUITES, "tinycli", build)


def test_suite_list(capsys):
    assert main(["bench", "suite", "list"]) == 0
    out = capsys.readouterr().out
    assert "small" in out and "tinycli" in out
    assert "Available benchmark suites" in out


def test_suite_run_prints_gap_table(capsys):
    assert main(["bench", "suite", "run", "--suite", "tinycli"]) == 0
    out = capsys.readouterr().out
    assert "Suite 'tinycli'" in out
    assert "certified gap" in out
    assert "6 rows" in out


def test_suite_run_json_and_csv(tmp_path, capsys):
    csv_path = tmp_path / "gaps.csv"
    assert main(["bench", "suite", "run", "--suite", "tinycli",
                 "--json", "--csv", str(csv_path)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["suite"]["name"] == "tinycli"
    assert len(payload["rows"]) == 6
    assert csv_path.read_text().count("\n") == 7


def test_suite_run_resumes_through_store(tmp_path, capsys):
    from repro.api import clear_cache

    store = str(tmp_path / "store")
    clear_cache()
    assert main(["bench", "suite", "run", "--suite", "tinycli",
                 "--store", store]) == 0
    first = capsys.readouterr().out
    assert "solver calls 6" in first
    assert main(["bench", "suite", "run", "--suite", "tinycli",
                 "--store", store]) == 0
    second = capsys.readouterr().out
    assert "solver calls 0" in second and "fully resumed" in second


def test_suite_verify_round_trip(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["bench", "suite", "run", "--suite", "tinycli",
                 "--baseline-out", str(baseline)]) == 0
    capsys.readouterr()
    assert baseline.exists()
    assert main(["bench", "suite", "verify", "--suite", "tinycli",
                 "--baseline", str(baseline)]) == 0
    assert "verified against" in capsys.readouterr().out


def test_suite_verify_fails_on_regression(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert main(["bench", "suite", "run", "--suite", "tinycli",
                 "--baseline-out", str(baseline)]) == 0
    capsys.readouterr()
    payload = json.loads(baseline.read_text())
    for key, pinned in payload["entries"].items():
        if key.endswith("/aloof"):
            pinned["gap"] -= 1.0  # pretend aloof used to be far better
    baseline.write_text(json.dumps(payload))
    assert main(["bench", "suite", "verify", "--suite", "tinycli",
                 "--baseline", str(baseline)]) == 1
    err = capsys.readouterr().err
    assert "regressed" in err and "violation" in err


def test_suite_verify_missing_baseline_is_typed_error(tmp_path, capsys):
    assert main(["bench", "suite", "verify", "--suite", "tinycli",
                 "--baseline", str(tmp_path / "nope.json")]) == 2
    assert "error:" in capsys.readouterr().err


def test_unknown_suite_is_typed_error(capsys):
    assert main(["bench", "suite", "run", "--suite", "nope"]) == 2
    assert "error:" in capsys.readouterr().err
