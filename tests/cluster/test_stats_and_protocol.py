"""ServiceStats wire round-trips and the cluster JSON/HTTP protocol."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.api.config import SolveConfig
from repro.cluster import protocol
from repro.exceptions import (
    ClusterError,
    ModelError,
    ServiceClosedError,
    ServiceOverloadedError,
)
from repro.instances import pigou
from repro.serve.service import ServiceStats


class TestServiceStatsRoundTrip:
    def test_to_dict_from_dict_round_trip(self):
        stats = ServiceStats(requests=10, tier1_hits=4, tier2_hits=2,
                             coalesced=1, enqueued=3, batches=2,
                             queue_peak=5, pending=0,
                             cache={"memory": {"hits": 4}})
        rebuilt = ServiceStats.from_dict(stats.to_dict())
        assert rebuilt == stats
        assert rebuilt.consistent

    def test_round_trip_survives_json(self):
        stats = ServiceStats(requests=7, tier1_hits=7, queue_peak=3)
        payload = json.dumps(stats.to_dict(), sort_keys=True)
        assert ServiceStats.from_dict(json.loads(payload)) == stats

    def test_from_dict_ignores_derived_and_unknown_keys(self):
        data = ServiceStats(requests=3, enqueued=3).to_dict()
        data["hits"] = 999            # derived: recomputed, not trusted
        data["consistent"] = False    # derived: recomputed, not trusted
        data["added_in_a_future_version"] = {"x": 1}
        rebuilt = ServiceStats.from_dict(data)
        assert rebuilt.hits == 0
        assert rebuilt.consistent

    def test_merge_sums_counters_and_preserves_partition(self):
        a = ServiceStats(requests=10, tier1_hits=6, enqueued=4,
                         batches=1, queue_peak=2,
                         cache={"memory": {"hits": 6}})
        b = ServiceStats(requests=5, tier2_hits=2, coalesced=1, enqueued=1,
                         rejected=1, batches=1, queue_peak=7,
                         cache={"memory": {"hits": 2}})
        merged = a.merge(b)
        assert merged.requests == 15
        assert merged.tier1_hits == 6
        assert merged.tier2_hits == 2
        assert merged.enqueued == 5
        assert merged.queue_peak == 7          # high-water mark: max
        assert merged.cache == {"memory": {"hits": 8}}
        assert a.consistent and b.consistent and merged.consistent

    def test_merge_of_many_is_order_independent(self):
        parts = [ServiceStats(requests=i, enqueued=i, queue_peak=i)
                 for i in range(1, 5)]
        forward = parts[0].merge(*parts[1:])
        backward = parts[-1].merge(*parts[-2::-1])
        assert forward == backward

    def test_merge_keeps_inconsistency_visible(self):
        broken = ServiceStats(requests=5, tier1_hits=1)  # 4 unaccounted
        merged = ServiceStats(requests=2, tier1_hits=2).merge(broken)
        assert not merged.consistent


class TestMixedVersionMerge:
    """Snapshots cross library versions: foreign counters must survive.

    Regression coverage for the gateway silently dropping side counters
    it did not recognise when aggregating snapshots from newer (or older)
    workers."""

    def test_from_dict_preserves_unknown_numeric_keys(self):
        data = ServiceStats(requests=3, enqueued=3).to_dict()
        data["speculative_solves"] = 4       # a future build's counter
        data["gpu_batches"] = 1.5
        data["build_label"] = "v9"           # non-numeric: not aggregable
        data["experimental"] = True          # bools are not counters
        rebuilt = ServiceStats.from_dict(data)
        assert rebuilt.extra == {"speculative_solves": 4, "gpu_batches": 1.5}

    def test_extra_counters_merge_additively(self):
        new_worker = ServiceStats.from_dict({
            "requests": 2, "enqueued": 2, "speculative_solves": 4})
        other_new = ServiceStats.from_dict({
            "requests": 1, "enqueued": 1, "speculative_solves": 3})
        old_worker = ServiceStats(requests=5, tier1_hits=5)
        merged = old_worker.merge(new_worker, other_new)
        assert merged.requests == 8
        assert merged.extra == {"speculative_solves": 7}
        assert merged.consistent

    def test_one_sided_extra_counter_keeps_its_value(self):
        merged = ServiceStats(requests=1, enqueued=1).merge(
            ServiceStats(requests=1, enqueued=1, extra={"only_here": 2}))
        assert merged.extra == {"only_here": 2}

    def test_extra_round_trips_through_the_wire_shape(self):
        stats = ServiceStats(requests=1, enqueued=1, extra={"foreign": 9})
        payload = json.dumps(stats.to_dict(), sort_keys=True)
        rebuilt = ServiceStats.from_dict(json.loads(payload))
        assert rebuilt.extra == {"foreign": 9}
        assert rebuilt == stats

    def test_empty_extra_is_omitted_from_the_wire_shape(self):
        # Back-compat: a build that saw no foreign counter emits the
        # historical dict shape exactly.
        assert "extra" not in ServiceStats(requests=1, enqueued=1).to_dict()


class TestOverloadedError:
    def test_carries_queue_depth(self):
        exc = ServiceOverloadedError("full", queue_depth=17)
        assert exc.queue_depth == 17

    def test_queue_depth_defaults_to_none(self):
        assert ServiceOverloadedError("full").queue_depth is None


class TestSolveRequestWire:
    def test_encode_decode_round_trip(self):
        instance = pigou()
        config = SolveConfig(compute_nash=False)
        body, digest = protocol.encode_solve_request(instance, "optop",
                                                     config)
        decoded_instance, strategy, decoded_config, decoded_digest = \
            protocol.decode_solve_request(body)
        assert strategy == "optop"
        assert decoded_digest == digest
        assert decoded_config.compute_nash is False
        assert decoded_instance.num_links == instance.num_links

    def test_digest_is_stable_across_encodes(self):
        _, first = protocol.encode_solve_request(pigou(), "optop", None)
        _, second = protocol.encode_solve_request(pigou(), "optop", None)
        assert first == second

    def test_malformed_body_raises_model_error(self):
        # ModelError -> HTTP 400: the caller sent garbage, not the cluster.
        with pytest.raises(ModelError):
            protocol.decode_solve_request(b"not json")


class TestErrorWire:
    def test_overload_maps_to_503_with_queue_depth(self):
        status, body = protocol.error_response(
            ServiceOverloadedError("queue full", queue_depth=42))
        assert status == 503
        with pytest.raises(ServiceOverloadedError) as excinfo:
            protocol.raise_for_response(status, body)
        assert excinfo.value.queue_depth == 42

    def test_closed_maps_to_503_and_reconstructs(self):
        status, body = protocol.error_response(ServiceClosedError("bye"))
        assert status == 503
        with pytest.raises(ServiceClosedError):
            protocol.raise_for_response(status, body)

    def test_model_error_maps_to_400(self):
        status, body = protocol.error_response(ModelError("bad instance"))
        assert status == 400
        with pytest.raises(ClusterError):
            protocol.raise_for_response(status, body)

    def test_unknown_error_maps_to_500(self):
        status, _ = protocol.error_response(RuntimeError("boom"))
        assert status == 500

    def test_success_does_not_raise(self):
        protocol.raise_for_response(200, b"{}")


class TestHttpFraming:
    def _round_trip(self, writer_coro, reader_coro):
        async def run():
            read_stream = asyncio.StreamReader()

            class _Collector:
                def __init__(self):
                    self.chunks = []

                def write(self, data):
                    self.chunks.append(bytes(data))
                    read_stream.feed_data(data)

                async def drain(self):
                    return None

            collector = _Collector()
            await writer_coro(collector)
            read_stream.feed_eof()
            return await reader_coro(read_stream)

        return asyncio.run(run())

    def test_request_round_trip(self):
        async def write(writer):
            await protocol.write_request(
                writer, "POST", "/solve", b'{"x": 1}',
                headers={protocol.DIGEST_HEADER: "abc123"})

        result = self._round_trip(write, protocol.read_request)
        method, path, headers, body = result
        assert (method, path) == ("POST", "/solve")
        assert headers[protocol.DIGEST_HEADER] == "abc123"
        assert body == b'{"x": 1}'

    def test_response_round_trip(self):
        async def write(writer):
            await protocol.write_response(writer, 503, b'{"q": 9}')

        status, headers, body = self._round_trip(write,
                                                 protocol.read_response)
        assert status == 503
        assert body == b'{"q": 9}'

    def test_clean_eof_reads_as_none(self):
        async def write(writer):
            return None

        assert self._round_trip(write, protocol.read_request) is None

    def test_oversized_request_line_is_rejected(self):
        async def run():
            stream = asyncio.StreamReader()
            stream.feed_data(b"GET /" + b"a" * (64 * 1024) + b" HTTP/1.1\r\n")
            stream.feed_eof()
            await protocol.read_request(stream)

        with pytest.raises((ClusterError, asyncio.LimitOverrunError)):
            asyncio.run(run())
