"""Rendezvous hashing: determinism, balance, and minimal remapping."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.cluster import rank_nodes, rendezvous_weight, route, shard_map
from repro.exceptions import ClusterError

import pytest

NODES = ["127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003",
         "127.0.0.1:9004"]
DIGESTS = [f"digest-{i:04d}" for i in range(400)]


class TestRoute:
    def test_route_is_deterministic(self):
        for digest in DIGESTS[:50]:
            assert route(digest, NODES) == route(digest, list(reversed(NODES)))

    def test_route_picks_a_member(self):
        for digest in DIGESTS[:50]:
            assert route(digest, NODES) in NODES

    def test_empty_node_set_raises(self):
        with pytest.raises(ClusterError):
            route("digest", [])

    def test_rank_orders_all_nodes(self):
        ranking = rank_nodes("some-digest", NODES)
        assert sorted(ranking) == sorted(NODES)
        assert ranking[0] == route("some-digest", NODES)

    def test_weights_differ_across_nodes(self):
        weights = {rendezvous_weight(node, "one-digest") for node in NODES}
        assert len(weights) == len(NODES)


class TestBalanceAndRemapping:
    def test_shards_are_roughly_balanced(self):
        grouped = shard_map(DIGESTS, NODES)
        expected = len(DIGESTS) / len(NODES)
        counts = {node: len(keys) for node, keys in grouped.items()}
        assert sum(counts.values()) == len(DIGESTS)
        for node, count in counts.items():
            assert count > expected * 0.5, (node, counts)
            assert count < expected * 1.6, (node, counts)

    def test_node_removal_only_moves_its_own_keys(self):
        before = {digest: route(digest, NODES) for digest in DIGESTS}
        survivors = NODES[1:]
        for digest in DIGESTS:
            after = route(digest, survivors)
            if before[digest] != NODES[0]:
                # Keys on surviving shards never migrate.
                assert after == before[digest]
            else:
                assert after in survivors

    def test_node_addition_only_steals_keys_for_itself(self):
        before = {digest: route(digest, NODES[:3]) for digest in DIGESTS}
        for digest in DIGESTS:
            after = route(digest, NODES)
            if after != NODES[3]:
                assert after == before[digest]


class TestCrossProcessDeterminism:
    def test_same_digest_routes_identically_in_a_fresh_process(self):
        """The mapping must not depend on process state (hash seeding)."""
        local = {digest: route(digest, NODES) for digest in DIGESTS[:25]}
        script = (
            "import json, sys\n"
            "from repro.cluster import route\n"
            "digests, nodes = json.loads(sys.stdin.read())\n"
            "print(json.dumps({d: route(d, nodes) for d in digests}))\n"
        )
        src_root = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_root) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps([list(local), NODES]),
            capture_output=True, text=True, check=True, env=env)
        assert json.loads(proc.stdout) == local
