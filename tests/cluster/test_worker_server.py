"""In-process `WorkerServer`: one shard exercised over real sockets."""

from __future__ import annotations

import asyncio
import json

from repro.api.config import SolveConfig
from repro.cluster import WorkerServer, protocol
from repro.cluster.worker import build_worker_service
from repro.instances import pigou
from repro.serve.service import ServiceStats


def run_against_worker(interaction, *, store_dir=None):
    """Start a worker on an ephemeral port, run ``interaction``, stop it."""

    async def main():
        worker = WorkerServer(store_dir=store_dir)
        await worker.start()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           worker.port)
            try:
                return await interaction(worker, reader, writer)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
        finally:
            await worker.stop()

    return asyncio.run(main())


async def exchange(reader, writer, method, path, body=b"", headers=None):
    await protocol.write_request(writer, method, path, body, headers=headers)
    return await protocol.read_response(reader)


class TestSolveRoute:
    def test_solve_round_trip(self):
        body, digest = protocol.encode_solve_request(
            pigou(), "optop", SolveConfig(compute_nash=False))

        async def interaction(worker, reader, writer):
            status, _, payload = await exchange(
                reader, writer, "POST", "/solve", body,
                headers={protocol.DIGEST_HEADER: digest})
            assert status == 200
            report = protocol.decode_report(payload)
            assert report.beta is not None
            stats = worker.service.stats()
            assert stats.requests == 1
            assert stats.consistent
            return report

        run_against_worker(interaction)

    def test_repeated_solves_hit_tier1_on_one_connection(self):
        body, digest = protocol.encode_solve_request(
            pigou(), "optop", SolveConfig(compute_nash=False))

        async def interaction(worker, reader, writer):
            for _ in range(3):  # keep-alive: three requests, one socket
                status, _, _payload = await exchange(
                    reader, writer, "POST", "/solve", body,
                    headers={protocol.DIGEST_HEADER: digest})
                assert status == 200
            stats = worker.service.stats()
            assert stats.requests == 3
            assert stats.tier1_hits == 2
            assert stats.enqueued == 1

        run_against_worker(interaction)

    def test_malformed_solve_body_yields_400(self):
        async def interaction(worker, reader, writer):
            status, _, payload = await exchange(
                reader, writer, "POST", "/solve", b"not json")
            assert status == 400
            assert json.loads(payload)["error"] == "ModelError"

        run_against_worker(interaction)


class TestControlRoutes:
    def test_stats_route_ships_exact_snapshot(self):
        async def interaction(worker, reader, writer):
            status, _, payload = await exchange(reader, writer,
                                                "GET", "/stats")
            assert status == 200
            remote = ServiceStats.from_dict(json.loads(payload))
            assert remote == worker.service.stats()

        run_against_worker(interaction)

    def test_health_route(self):
        async def interaction(worker, reader, writer):
            status, _, payload = await exchange(reader, writer,
                                                "GET", "/health")
            assert status == 200
            health = json.loads(payload)
            assert health["status"] == "ok"
            assert health["port"] == worker.port

        run_against_worker(interaction)

    def test_drain_route(self):
        async def interaction(worker, reader, writer):
            status, _, payload = await exchange(
                reader, writer, "POST", "/drain",
                json.dumps({"timeout": 5.0}).encode())
            assert status == 200
            assert json.loads(payload)["drained"] is True

        run_against_worker(interaction)

    def test_unknown_route_yields_404(self):
        async def interaction(worker, reader, writer):
            status, _, _payload = await exchange(reader, writer,
                                                 "GET", "/nope")
            assert status == 404

        run_against_worker(interaction)


class TestSharedStoreTier:
    def test_cold_worker_serves_warm_keys_from_shared_store(self, tmp_path):
        store = str(tmp_path / "store")
        body, digest = protocol.encode_solve_request(
            pigou(), "optop", SolveConfig(compute_nash=False))

        async def solve_once(worker, reader, writer):
            status, _, _payload = await exchange(
                reader, writer, "POST", "/solve", body,
                headers={protocol.DIGEST_HEADER: digest})
            assert status == 200
            return worker.service.stats()

        first = run_against_worker(solve_once, store_dir=store)
        assert first.enqueued == 1
        # A brand-new worker on the same store: tier-2 hit, no solver call.
        second = run_against_worker(solve_once, store_dir=store)
        assert second.tier2_hits == 1
        assert second.enqueued == 0


class TestDigestPassthrough:
    def test_wire_digest_becomes_the_cache_key(self):
        service = build_worker_service()
        service.start()
        try:
            config = SolveConfig(compute_nash=False)
            _, digest = protocol.encode_solve_request(pigou(), "optop",
                                                      config)
            service.submit(pigou(), "optop", config=config,
                           digest=digest).result(timeout=60.0)
            # Same digest, submitted without recomputation: tier-1 hit.
            service.submit(pigou(), "optop", config=config,
                           digest=digest).result(timeout=60.0)
            stats = service.stats()
            assert stats.tier1_hits == 1
            assert stats.enqueued == 1
        finally:
            service.shutdown()

    def test_passthrough_matches_computed_digest(self):
        service = build_worker_service()
        service.start()
        try:
            config = SolveConfig(compute_nash=False)
            _, digest = protocol.encode_solve_request(pigou(), "optop",
                                                      config)
            service.submit(pigou(), "optop", config=config,
                           digest=digest).result(timeout=60.0)
            # A submit that computes the digest itself must land on the
            # same tier-1 entry — passthrough and local hashing agree.
            service.submit(pigou(), "optop",
                           config=config).result(timeout=60.0)
            assert service.stats().tier1_hits == 1
        finally:
            service.shutdown()
