"""Full-cluster lifecycle: sharding, resume, fault tolerance, CLI.

These spawn real worker processes, so they live in the slow lane
(``-m slow``); the fast per-component coverage is in the sibling modules.
"""

from __future__ import annotations

import json

import pytest

from repro.api.config import SolveConfig
from repro.cluster import run_cluster_bench, start_cluster
from repro.cluster.hashing import route
from repro.serialization import instance_digest
from repro.serve.bench import build_workload

pytestmark = pytest.mark.slow

CONFIG = SolveConfig(compute_nash=False)


def make_stream(num_requests=40, num_distinct=30, seed=3):
    instances, schedule = build_workload(
        num_requests=num_requests, num_distinct=num_distinct,
        num_links=3, seed=seed)
    return [instances[i] for i in schedule]


class TestTwoPassResume:
    def test_second_pass_makes_zero_solver_calls(self, tmp_path):
        result = run_cluster_bench(
            n_workers=2, num_requests=40, num_distinct=30, num_links=3,
            passes=2, store_dir=str(tmp_path / "store"), max_wait_ms=2.0)
        cold, warm = result.passes
        assert result.consistent
        assert cold.requests == warm.requests == 40
        assert cold.solver_calls == 30           # one per distinct instance
        assert warm.solver_calls == 0            # fully resumed
        assert warm.merged.hits == 40
        assert all(count == 0 for count in warm.shard_enqueued.values())

    def test_requests_follow_the_rendezvous_mapping(self, tmp_path):
        stream = make_stream()
        with start_cluster(n_workers=2,
                           store_dir=str(tmp_path / "store")) as cluster:
            node_ids = sorted(cluster.gateway.alive_ids())
            expected = {node: 0 for node in node_ids}
            for instance in stream:
                expected[route(instance_digest(instance), node_ids)] += 1
            cluster.solve_many(stream, "optop", config=CONFIG)
            stats = cluster.stats()
            observed = {node: entry["forwarded"]
                        for node, entry in stats["workers"].items()}
        assert observed == expected

    def test_cold_cluster_adopts_a_warm_store(self, tmp_path):
        store = str(tmp_path / "store")
        stream = make_stream()
        with start_cluster(n_workers=2, store_dir=store) as cluster:
            cluster.solve_many(stream, "optop", config=CONFIG)
        # Fresh processes, fresh tier-1 caches — only the store survives.
        with start_cluster(n_workers=2, store_dir=store) as cluster:
            cluster.solve_many(stream, "optop", config=CONFIG)
            merged = cluster.merged_stats()
        assert merged.enqueued == 0
        assert merged.tier2_hits > 0
        assert merged.consistent


class TestFaultTolerance:
    def test_killed_worker_loses_no_requests(self, tmp_path):
        stream = make_stream(num_requests=40, num_distinct=40)
        with start_cluster(n_workers=2,
                           store_dir=str(tmp_path / "store")) as cluster:
            futures = [cluster.submit(instance, "optop", config=CONFIG)
                       for instance in stream]
            dead = cluster.kill_worker(0)
            reports = [future.result(timeout=300.0) for future in futures]
            assert len(reports) == 40
            assert all(report.beta is not None for report in reports)
            stats = cluster.stats()
            assert stats["workers"][dead]["alive"] is False
            merged = cluster.merged_stats()
            assert merged.consistent
            # The survivor now owns every key: later requests just work.
            late = cluster.solve(stream[0], "optop", config=CONFIG)
            assert late.beta is not None

    def test_gateway_counts_reroutes(self, tmp_path):
        stream = make_stream(num_requests=30, num_distinct=30)
        with start_cluster(n_workers=2,
                           store_dir=str(tmp_path / "store")) as cluster:
            cluster.solve_many(stream[:10], "optop", config=CONFIG)
            cluster.kill_worker(1)
            cluster.solve_many(stream[10:], "optop", config=CONFIG)
            gateway = cluster.stats()["gateway"]
        assert gateway["requests"] == 30
        assert gateway["failures"] == 0
        assert gateway["reroutes"] >= 1


class TestHttpGateway:
    def test_http_front_door_solves_and_reports_stats(self, tmp_path):
        import asyncio

        from repro.cluster import protocol
        from repro.instances import pigou

        async def drive(port):
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           port)
            try:
                body, digest = protocol.encode_solve_request(
                    pigou(), "optop", CONFIG)
                await protocol.write_request(
                    writer, "POST", "/solve", body,
                    headers={protocol.DIGEST_HEADER: digest})
                status, _, payload = await protocol.read_response(reader)
                assert status == 200
                report = protocol.decode_report(payload)
                await protocol.write_request(writer, "GET", "/stats")
                status, _, payload = await protocol.read_response(reader)
                assert status == 200
                return report, json.loads(payload)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

        with start_cluster(n_workers=2, store_dir=str(tmp_path / "store"),
                           http=True) as cluster:
            report, stats = asyncio.run(drive(cluster.http_port))
        assert report.beta is not None
        assert stats["merged"]["requests"] == 1
        assert stats["merged"]["consistent"] is True


class TestCli:
    def test_serve_cluster_duration(self, capsys):
        from repro.cli import main

        code = main(["serve", "cluster", "--workers", "1", "--port", "0",
                     "--duration", "0.5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "gateway listening" in out
        assert "worker[0]" in out

    def test_serve_bench_cluster(self, capsys):
        from repro.cli import main

        code = main(["serve", "bench", "--cluster", "1", "--requests", "40",
                     "--distinct", "30", "--num-links", "3",
                     "--max-wait-ms", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Cluster benchmark (1 workers)" in out
        assert "100.0%" in out      # warm pass: everything a cache hit

    def test_serve_bench_cluster_json(self, capsys):
        from repro.cli import main

        code = main(["serve", "bench", "--cluster", "1", "--requests", "40",
                     "--distinct", "30", "--num-links", "3",
                     "--max-wait-ms", "2", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        record = json.loads(out)
        assert record["consistent"] is True
        assert record["n_workers"] == 1
        assert record["passes"][1]["solver_calls"] == 0
