"""Cluster resilience: wire deadlines, breakers, supervised respawn.

Real worker processes are spawned, so the module lives in the slow lane
with the lifecycle tests.
"""

from __future__ import annotations

import time

import pytest

from repro.api.config import SolveConfig
from repro.cluster import start_cluster
from repro.exceptions import ServiceTimeoutError
from repro.serve.bench import build_workload

pytestmark = pytest.mark.slow

CONFIG = SolveConfig(compute_nash=False)


def make_stream(num_requests=30, num_distinct=12, seed=4):
    instances, schedule = build_workload(
        num_requests=num_requests, num_distinct=num_distinct,
        num_links=3, seed=seed)
    return [instances[i] for i in schedule]


class TestWireDeadlines:
    def test_expired_deadline_times_out_before_the_wire(self, tmp_path):
        stream = make_stream(num_requests=4, num_distinct=4)
        with start_cluster(n_workers=2,
                           store_dir=str(tmp_path / "store")) as cluster:
            future = cluster.submit(stream[0], "optop", config=CONFIG,
                                    deadline=time.monotonic() - 0.1)
            with pytest.raises(ServiceTimeoutError):
                future.result(timeout=60.0)
            gateway = cluster.stats()["gateway"]
        assert gateway["timeouts"] >= 1

    def test_generous_deadline_solves_end_to_end(self, tmp_path):
        stream = make_stream(num_requests=6, num_distinct=6)
        with start_cluster(n_workers=2,
                           store_dir=str(tmp_path / "store")) as cluster:
            reports = [
                cluster.submit(instance, "optop", config=CONFIG,
                               deadline=time.monotonic() + 120.0)
                .result(timeout=120.0)
                for instance in stream
            ]
            gateway = cluster.stats()["gateway"]
        assert all(report.strategy == "optop" for report in reports)
        assert gateway["timeouts"] == 0


class TestBreakerFailover:
    def test_worker_death_after_health_check_still_fails_over(self,
                                                              tmp_path):
        # The classic TOCTOU: /health said alive, then the worker died
        # before /solve. The connection error must open the breaker and
        # re-route — callers never see a raw socket error.
        stream = make_stream(num_requests=24, num_distinct=24)
        with start_cluster(n_workers=2,
                           store_dir=str(tmp_path / "store")) as cluster:
            health = cluster.health()
            assert health["status"] == "ok"
            assert all(entry["alive"] for entry in health["workers"].values())
            cluster.kill_worker(0)
            reports = [
                cluster.submit(instance, "optop", config=CONFIG)
                .result(timeout=300.0)
                for instance in stream
            ]
            stats = cluster.stats()
        assert all(report is not None for report in reports)
        assert stats["gateway"]["breaker_opens"] >= 1
        assert stats["merged"]["consistent"] is True


class TestSupervisedRespawn:
    def test_sigkilled_worker_respawns_and_serves_warm(self, tmp_path):
        stream = make_stream(num_requests=16, num_distinct=8)
        with start_cluster(n_workers=2, store_dir=str(tmp_path / "store"),
                           supervise=True) as cluster:
            cluster.solve_many(stream, "optop", config=CONFIG)
            # Refresh so the doomed incarnation's snapshot is on record —
            # the respawn archives it into ``retired_stats``.
            cluster.stats()
            dead = cluster.kill_worker(0)

            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                stats = cluster.stats()
                respawned = stats["supervisor"]["worker_respawns"] >= 1
                alive = stats["workers"][dead]["alive"]
                if respawned and alive:
                    break
                time.sleep(0.2)
            else:
                pytest.fail("supervisor never respawned the killed worker")

            before = cluster.merged_stats()
            cluster.solve_many(stream, "optop", config=CONFIG)
            after = cluster.merged_stats()
            stats = cluster.stats()

        # The respawned worker reattached to the shared store, so the
        # replay is pure cache traffic — no solver work is repeated.
        assert after.hits - before.hits >= len(stream)
        assert stats["workers"][dead]["respawns"] >= 1
        assert stats["supervisor"]["worker_respawns"] >= 1
        assert after.consistent
