"""Tests for the parallel-link water-filling solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.latency import ConstantLatency, LinearLatency, MM1Latency, MonomialLatency
from repro.network import ParallelLinkInstance
from repro.equilibrium import (
    parallel_nash,
    parallel_optimum,
    parallel_optimality_gap,
    parallel_wardrop_gap,
)
from repro.equilibrium.parallel import water_fill


class TestPigouFlows:
    def test_nash_floods_fast_link(self, pigou_instance):
        nash = parallel_nash(pigou_instance)
        assert nash.flows == pytest.approx([1.0, 0.0], abs=1e-9)
        assert nash.cost == pytest.approx(1.0)
        assert nash.common_value == pytest.approx(1.0)

    def test_optimum_balances(self, pigou_instance):
        optimum = parallel_optimum(pigou_instance)
        assert optimum.flows == pytest.approx([0.5, 0.5], abs=1e-9)
        assert optimum.cost == pytest.approx(0.75)

    def test_kinds_are_labelled(self, pigou_instance):
        assert parallel_nash(pigou_instance).kind == "nash"
        assert parallel_optimum(pigou_instance).kind == "optimum"


class TestFigure4Flows:
    """Exact values derived in the paper's Figures 4-6 walk-through."""

    def test_optimum_flows(self, figure4_instance):
        optimum = parallel_optimum(figure4_instance)
        expected = [0.35, 7.0 / 30.0, 0.175, 8.0 / 75.0, 0.135]
        assert optimum.flows == pytest.approx(expected, abs=1e-9)

    def test_nash_leaves_constant_link_empty(self, figure4_instance):
        nash = parallel_nash(figure4_instance)
        assert nash.flows[4] == pytest.approx(0.0, abs=1e-12)
        assert nash.common_value < 0.7

    def test_links_4_and_5_under_loaded(self, figure4_instance):
        nash = parallel_nash(figure4_instance)
        optimum = parallel_optimum(figure4_instance)
        assert nash.flows[3] < optimum.flows[3]
        assert nash.flows[4] < optimum.flows[4]
        for i in range(3):
            assert nash.flows[i] > optimum.flows[i]


class TestEquilibriumConditions:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_nash_satisfies_wardrop(self, seed):
        from repro.instances import random_mixed_parallel
        instance = random_mixed_parallel(6, demand=2.0, seed=seed)
        nash = parallel_nash(instance)
        assert parallel_wardrop_gap(instance, nash.flows) < 1e-7

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_optimum_satisfies_kkt(self, seed):
        from repro.instances import random_mixed_parallel
        instance = random_mixed_parallel(6, demand=2.0, seed=seed)
        optimum = parallel_optimum(instance)
        assert parallel_optimality_gap(instance, optimum.flows) < 1e-7

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_flows_sum_to_demand(self, seed):
        from repro.instances import random_linear_parallel
        instance = random_linear_parallel(5, demand=3.0, seed=seed)
        assert parallel_nash(instance).flows.sum() == pytest.approx(3.0, abs=1e-8)
        assert parallel_optimum(instance).flows.sum() == pytest.approx(3.0, abs=1e-8)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_optimum_cost_never_exceeds_nash(self, seed):
        from repro.instances import random_polynomial_parallel
        instance = random_polynomial_parallel(5, demand=2.0, seed=seed)
        assert parallel_optimum(instance).cost <= parallel_nash(instance).cost + 1e-9

    def test_nash_minimises_beckmann(self, random_linear_instance):
        nash = parallel_nash(random_linear_instance)
        rng = np.random.default_rng(0)
        for _ in range(20):
            weights = rng.uniform(0.1, 1.0, random_linear_instance.num_links)
            other = random_linear_instance.demand * weights / weights.sum()
            assert random_linear_instance.beckmann(nash.flows) \
                <= random_linear_instance.beckmann(other) + 1e-9

    def test_optimum_minimises_cost(self, random_linear_instance):
        optimum = parallel_optimum(random_linear_instance)
        rng = np.random.default_rng(1)
        for _ in range(20):
            weights = rng.uniform(0.1, 1.0, random_linear_instance.num_links)
            other = random_linear_instance.demand * weights / weights.sum()
            assert optimum.cost <= random_linear_instance.cost(other) + 1e-9


class TestSpecialRegimes:
    def test_zero_demand(self):
        instance = ParallelLinkInstance([LinearLatency(1.0), LinearLatency(2.0)], 0.0)
        nash = parallel_nash(instance)
        assert np.allclose(nash.flows, 0.0)
        assert nash.cost == 0.0

    def test_single_link(self):
        instance = ParallelLinkInstance([LinearLatency(2.0, 1.0)], 1.5)
        nash = parallel_nash(instance)
        assert nash.flows == pytest.approx([1.5])
        assert nash.common_value == pytest.approx(4.0)

    def test_identical_links_split_evenly(self):
        instance = ParallelLinkInstance([LinearLatency(1.0)] * 4, 2.0)
        nash = parallel_nash(instance)
        optimum = parallel_optimum(instance)
        assert nash.flows == pytest.approx([0.5] * 4, abs=1e-9)
        assert optimum.flows == pytest.approx([0.5] * 4, abs=1e-9)

    def test_all_constant_links(self):
        instance = ParallelLinkInstance(
            [ConstantLatency(1.0), ConstantLatency(1.0)], 2.0)
        nash = parallel_nash(instance)
        assert nash.flows.sum() == pytest.approx(2.0)
        assert nash.cost == pytest.approx(2.0)

    def test_expensive_link_stays_empty(self):
        instance = ParallelLinkInstance(
            [LinearLatency(1.0, 0.0), LinearLatency(1.0, 100.0)], 1.0)
        nash = parallel_nash(instance)
        assert nash.flows == pytest.approx([1.0, 0.0], abs=1e-9)

    def test_mm1_equilibrium_below_capacity(self):
        instance = ParallelLinkInstance([MM1Latency(2.0), MM1Latency(4.0)], 3.0)
        nash = parallel_nash(instance)
        assert nash.flows[0] < 2.0 and nash.flows[1] < 4.0
        assert nash.flows.sum() == pytest.approx(3.0, abs=1e-8)

    def test_monomial_links(self):
        instance = ParallelLinkInstance(
            [MonomialLatency(1.0, 2.0), ConstantLatency(1.0)], 1.0)
        optimum = parallel_optimum(instance)
        # marginal cost of x^2 link is 3x^2 = 1 -> x = 1/sqrt(3)
        assert optimum.flows[0] == pytest.approx(1.0 / np.sqrt(3.0), abs=1e-8)


class TestWaterFillFunction:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError):
            water_fill([LinearLatency(1.0)], 1.0, "bogus")

    def test_negative_demand_rejected(self):
        with pytest.raises(ModelError):
            water_fill([LinearLatency(1.0)], -1.0, "nash")

    def test_empty_links_rejected(self):
        with pytest.raises(ModelError):
            water_fill([], 1.0, "nash")

    def test_common_level_reported(self):
        flows, level = water_fill([LinearLatency(1.0), LinearLatency(1.0)], 2.0,
                                  "nash")
        assert level == pytest.approx(1.0)
        assert flows == pytest.approx([1.0, 1.0])
