"""Tests for the exact path-based solver and the high-level network entry points."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.latency import ConstantLatency, LinearLatency
from repro.network import Network, NetworkInstance
from repro.equilibrium import (
    frank_wolfe,
    FrankWolfeOptions,
    network_nash,
    network_optimum,
    network_wardrop_gap,
    path_based_flow,
)
from repro.instances import braess_paradox, grid_network, roughgarden_example


class TestPathBasedSolver:
    def test_braess_nash(self):
        result = path_based_flow(braess_paradox(), "nash")
        assert result.cost == pytest.approx(2.0, abs=1e-6)
        assert result.solver == "path-based"

    def test_braess_optimum(self):
        result = path_based_flow(braess_paradox(), "optimum")
        assert result.cost == pytest.approx(1.5, abs=1e-6)

    def test_roughgarden_optimum_flows(self):
        result = path_based_flow(roughgarden_example(), "optimum")
        assert result.edge_flows == pytest.approx([0.75, 0.25, 0.5, 0.25, 0.75],
                                                  abs=1e-5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError):
            path_based_flow(braess_paradox(), "bogus")

    def test_too_many_paths_rejected(self):
        with pytest.raises(ModelError):
            path_based_flow(grid_network(4, 4, seed=0), "nash", max_paths=3)

    def test_agrees_with_frank_wolfe(self):
        instance = grid_network(3, 3, demand=1.5, seed=5)
        exact = path_based_flow(instance, "nash")
        iterative = frank_wolfe(instance, "nash", FrankWolfeOptions(tolerance=1e-9))
        assert exact.cost == pytest.approx(iterative.cost, rel=1e-4)

    def test_multicommodity(self):
        net = Network()
        net.add_edge("s", "m", LinearLatency(1.0))   # 0
        net.add_edge("m", "t", LinearLatency(1.0))   # 1
        net.add_edge("s", "t", ConstantLatency(3.0))  # 2
        from repro.network import Commodity
        instance = NetworkInstance(net, [Commodity("s", "t", 1.0),
                                         Commodity("m", "t", 1.0)])
        result = path_based_flow(instance, "nash")
        instance.check_flow_conservation(result.edge_flows, atol=1e-5)
        assert network_wardrop_gap(instance, result.edge_flows) < 1e-5


class TestNetworkEntryPoints:
    def test_auto_uses_path_solver_on_small_networks(self):
        result = network_nash(braess_paradox())
        assert result.solver == "path-based"

    def test_explicit_frank_wolfe(self):
        result = network_nash(braess_paradox(), solver="frank-wolfe",
                              tolerance=1e-7)
        assert result.solver == "frank-wolfe"
        assert result.cost == pytest.approx(2.0, abs=1e-3)

    def test_explicit_path(self):
        result = network_optimum(braess_paradox(), solver="path")
        assert result.solver == "path-based"

    def test_unknown_solver_rejected(self):
        with pytest.raises(ModelError):
            network_nash(braess_paradox(), solver="bogus")

    def test_nash_cost_at_least_optimum(self):
        instance = grid_network(3, 3, demand=2.0, seed=9)
        assert network_nash(instance).cost >= network_optimum(instance).cost - 1e-6

    def test_auto_falls_back_to_frank_wolfe_on_larger_networks(self):
        # A 7x7 grid has 84 edges, beyond the auto path-solver threshold.
        instance = grid_network(7, 7, demand=2.0, seed=0)
        result = network_nash(instance, tolerance=1e-4)
        assert result.solver == "frank-wolfe"
        assert result.converged
