"""Property-based tests for the water-filling solvers (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.latency import ConstantLatency, LinearLatency, MonomialLatency
from repro.network import ParallelLinkInstance
from repro.equilibrium import (
    parallel_nash,
    parallel_optimum,
    parallel_optimality_gap,
    parallel_wardrop_gap,
)


def linear_instances():
    """Random affine parallel-link instances with positive demand."""
    link = st.tuples(st.floats(min_value=0.05, max_value=4.0),
                     st.floats(min_value=0.0, max_value=3.0))
    return st.builds(
        lambda links, demand: ParallelLinkInstance(
            [LinearLatency(a, b) for a, b in links], demand),
        st.lists(link, min_size=1, max_size=6),
        st.floats(min_value=0.01, max_value=5.0))


def mixed_instances():
    """Instances mixing affine, monomial and constant latencies."""
    affine = st.builds(LinearLatency,
                       st.floats(min_value=0.05, max_value=4.0),
                       st.floats(min_value=0.0, max_value=3.0))
    mono = st.builds(MonomialLatency,
                     st.floats(min_value=0.1, max_value=2.0),
                     st.floats(min_value=1.0, max_value=3.0),
                     st.floats(min_value=0.0, max_value=1.0))
    const = st.builds(ConstantLatency, st.floats(min_value=0.1, max_value=3.0))
    return st.builds(
        lambda increasing, extras, demand: ParallelLinkInstance(
            [increasing] + extras, demand),
        affine,
        st.lists(st.one_of(affine, mono, const), min_size=0, max_size=5),
        st.floats(min_value=0.01, max_value=4.0))


@settings(max_examples=50, deadline=None)
@given(linear_instances())
def test_nash_flows_feasible(instance):
    nash = parallel_nash(instance)
    assert np.all(nash.flows >= -1e-12)
    assert nash.flows.sum() == pytest.approx(instance.demand, rel=1e-6, abs=1e-8)


@settings(max_examples=50, deadline=None)
@given(linear_instances())
def test_optimum_cost_below_nash_cost(instance):
    assert parallel_optimum(instance).cost <= parallel_nash(instance).cost \
        * (1.0 + 1e-9) + 1e-12


@settings(max_examples=50, deadline=None)
@given(mixed_instances())
def test_nash_satisfies_wardrop_condition(instance):
    nash = parallel_nash(instance)
    assert parallel_wardrop_gap(instance, nash.flows, flow_atol=1e-7) < 1e-6


@settings(max_examples=50, deadline=None)
@given(mixed_instances())
def test_optimum_satisfies_kkt_condition(instance):
    optimum = parallel_optimum(instance)
    assert parallel_optimality_gap(instance, optimum.flows, flow_atol=1e-7) < 1e-6


@settings(max_examples=50, deadline=None)
@given(linear_instances())
def test_linear_price_of_anarchy_bound(instance):
    """Roughgarden-Tardos: C(N)/C(O) <= 4/3 for affine latencies."""
    optimum_cost = parallel_optimum(instance).cost
    nash_cost = parallel_nash(instance).cost
    if optimum_cost > 1e-12:
        assert nash_cost / optimum_cost <= 4.0 / 3.0 + 1e-6


@settings(max_examples=40, deadline=None)
@given(linear_instances(), st.floats(min_value=0.1, max_value=0.9))
def test_nash_monotone_in_demand(instance, shrink):
    """Proposition 7.1 as a property: smaller demand, no larger link flows."""
    full = parallel_nash(instance).flows
    reduced = parallel_nash(instance.with_demand(shrink * instance.demand)).flows
    assert np.all(reduced <= full + 1e-7)


@settings(max_examples=40, deadline=None)
@given(mixed_instances())
def test_nash_beckmann_not_above_optimum_flow_beckmann(instance):
    """The Nash flow minimises the Beckmann potential."""
    nash = parallel_nash(instance)
    optimum = parallel_optimum(instance)
    assert instance.beckmann(nash.flows) <= instance.beckmann(optimum.flows) + 1e-7
