"""Vectorized/reference water-filling equivalence (the kernel contract).

Parametrized over random mixed instances (linear, M/M/1, polynomial, power
and constant families), both solve kinds, zero-demand and constant-floor edge
cases: the vectorized backend must match the scalar reference to 1e-9.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SolveConfig
from repro.core.optop import optop
from repro.equilibrium.parallel import (
    parallel_nash,
    parallel_optimum,
    water_fill,
)
from repro.exceptions import ModelError
from repro.latency import (
    BPRLatency,
    ConstantLatency,
    LinearLatency,
    MM1Latency,
    MonomialLatency,
    PolynomialLatency,
)
from repro.instances import random_linear_parallel, random_mixed_parallel
from repro.network.parallel import ParallelLinkInstance

EQ_TOL = 1e-9


def random_family_links(seed: int, m: int = 12):
    """A heterogeneous link set drawing from every analytic family."""
    rng = np.random.default_rng(seed)
    links = []
    for i in range(m):
        kind = rng.integers(0, 5)
        if kind == 0:
            links.append(LinearLatency(float(rng.uniform(0.2, 3.0)),
                                       float(rng.uniform(0.0, 1.0))))
        elif kind == 1:
            links.append(MM1Latency(float(rng.uniform(2.0, 6.0))))
        elif kind == 2:
            links.append(MonomialLatency(float(rng.uniform(0.3, 2.0)),
                                         float(rng.integers(2, 5)),
                                         float(rng.uniform(0.0, 0.5))))
        elif kind == 3:
            coeffs = rng.uniform(0.1, 1.0, size=int(rng.integers(2, 5)))
            links.append(PolynomialLatency([float(c) for c in coeffs]))
        else:
            links.append(ConstantLatency(float(rng.uniform(0.8, 2.0))))
    if all(lat.is_constant for lat in links):
        links[0] = LinearLatency(1.0, 0.0)
    return links


def assert_backends_agree(latencies, demand, kind, *, tol=1e-12):
    vec_flows, vec_level = water_fill(latencies, demand, kind, tol=tol)
    ref_flows, ref_level = water_fill(latencies, demand, kind, tol=tol,
                                      backend="reference")
    np.testing.assert_allclose(vec_flows, ref_flows, atol=EQ_TOL, rtol=0.0)
    assert vec_level == pytest.approx(ref_level, abs=EQ_TOL)
    if demand > 0.0:
        assert vec_flows.sum() == pytest.approx(demand, rel=1e-9)


class TestRandomMixedEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_mixed_families(self, seed, kind):
        links = random_family_links(seed)
        demand = float(np.random.default_rng(1000 + seed).uniform(0.1, 4.0))
        assert_backends_agree(links, demand, kind)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_all_linear_uses_exact_closed_form(self, seed, kind):
        instance = random_linear_parallel(40, demand=7.5, seed=seed)
        assert_backends_agree(instance.latencies, instance.demand, kind)

    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_generator_mixed_instances(self, kind):
        instance = random_mixed_parallel(30, demand=4.0, seed=5)
        assert_backends_agree(instance.latencies, instance.demand, kind)


class TestEdgeCases:
    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_zero_demand(self, kind):
        links = random_family_links(3)
        assert_backends_agree(links, 0.0, kind)

    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_constant_floor_absorbs_excess(self, kind):
        # A cheap constant link caps the level: the constants must soak up
        # the flow the increasing links cannot take below the floor.
        links = [LinearLatency(1.0, 0.0), ConstantLatency(0.5),
                 ConstantLatency(0.5), LinearLatency(2.0, 0.1)]
        assert_backends_agree(links, 10.0, kind)

    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_all_constant_links(self, kind):
        links = [ConstantLatency(1.0), ConstantLatency(1.0)]
        assert_backends_agree(links, 2.0, kind)

    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_bpr_and_constant_mixture(self, kind):
        links = [BPRLatency(1.0, 2.0), BPRLatency(0.5, 1.0, alpha=0.3),
                 ConstantLatency(1.8), LinearLatency(0.7, 0.2)]
        assert_backends_agree(links, 3.0, kind)

    def test_unknown_kind_raises_on_both_backends(self):
        links = [LinearLatency(1.0)]
        with pytest.raises(ModelError):
            water_fill(links, 1.0, "nope")
        with pytest.raises(ModelError):
            water_fill(links, 1.0, "nope", backend="reference")

    def test_unknown_backend_raises(self):
        with pytest.raises(ModelError):
            water_fill([LinearLatency(1.0)], 1.0, "nash", backend="turbo")


class TestConfigSelection:
    def test_reference_backend_selectable_via_config(self):
        instance = random_mixed_parallel(10, demand=2.0, seed=9)
        config = SolveConfig(kernel_backend="reference")
        ref = parallel_nash(instance, config=config)
        vec = parallel_nash(instance)
        np.testing.assert_allclose(ref.flows, vec.flows, atol=EQ_TOL)
        assert ref.common_value == pytest.approx(vec.common_value, abs=EQ_TOL)

    def test_invalid_kernel_backend_rejected(self):
        with pytest.raises(ModelError):
            SolveConfig(kernel_backend="turbo")

    @pytest.mark.parametrize("seed", [0, 4])
    def test_optop_identical_across_backends(self, seed):
        instance = random_mixed_parallel(14, demand=3.0, seed=seed)
        vec = optop(instance)
        ref = optop(instance, config=SolveConfig(kernel_backend="reference"))
        assert vec.beta == pytest.approx(ref.beta, abs=1e-8)
        np.testing.assert_allclose(vec.strategy.flows, ref.strategy.flows,
                                   atol=1e-8)

    def test_optimum_matches_reference_through_config(self):
        instance = random_linear_parallel(25, demand=6.0, seed=2)
        vec = parallel_optimum(instance)
        ref = parallel_optimum(instance,
                               config=SolveConfig(kernel_backend="reference"))
        np.testing.assert_allclose(vec.flows, ref.flows, atol=EQ_TOL)
