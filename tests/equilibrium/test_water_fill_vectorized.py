"""Vectorized/reference water-filling equivalence (the kernel contract).

Parametrized over random mixed instances (linear, M/M/1, polynomial, power
and constant families), both solve kinds, zero-demand and constant-floor edge
cases: the vectorized backend must match the scalar reference to 1e-9.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SolveConfig
from repro.core.optop import optop
from repro.equilibrium.parallel import (
    parallel_nash,
    parallel_optimum,
    water_fill,
    water_fill_many,
)
from repro.exceptions import ModelError
from repro.latency import (
    BPRLatency,
    ConstantLatency,
    LinearLatency,
    MM1Latency,
    MonomialLatency,
    PolynomialLatency,
)
from repro.instances import random_linear_parallel, random_mixed_parallel
from repro.network.parallel import ParallelLinkInstance

EQ_TOL = 1e-9


def random_family_links(seed: int, m: int = 12):
    """A heterogeneous link set drawing from every analytic family."""
    rng = np.random.default_rng(seed)
    links = []
    for i in range(m):
        kind = rng.integers(0, 5)
        if kind == 0:
            links.append(LinearLatency(float(rng.uniform(0.2, 3.0)),
                                       float(rng.uniform(0.0, 1.0))))
        elif kind == 1:
            links.append(MM1Latency(float(rng.uniform(2.0, 6.0))))
        elif kind == 2:
            links.append(MonomialLatency(float(rng.uniform(0.3, 2.0)),
                                         float(rng.integers(2, 5)),
                                         float(rng.uniform(0.0, 0.5))))
        elif kind == 3:
            coeffs = rng.uniform(0.1, 1.0, size=int(rng.integers(2, 5)))
            links.append(PolynomialLatency([float(c) for c in coeffs]))
        else:
            links.append(ConstantLatency(float(rng.uniform(0.8, 2.0))))
    if all(lat.is_constant for lat in links):
        links[0] = LinearLatency(1.0, 0.0)
    return links


def assert_backends_agree(latencies, demand, kind, *, tol=1e-12):
    vec_flows, vec_level = water_fill(latencies, demand, kind, tol=tol)
    ref_flows, ref_level = water_fill(latencies, demand, kind, tol=tol,
                                      backend="reference")
    np.testing.assert_allclose(vec_flows, ref_flows, atol=EQ_TOL, rtol=0.0)
    assert vec_level == pytest.approx(ref_level, abs=EQ_TOL)
    if demand > 0.0:
        assert vec_flows.sum() == pytest.approx(demand, rel=1e-9)


class TestRandomMixedEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_mixed_families(self, seed, kind):
        links = random_family_links(seed)
        demand = float(np.random.default_rng(1000 + seed).uniform(0.1, 4.0))
        assert_backends_agree(links, demand, kind)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_all_linear_uses_exact_closed_form(self, seed, kind):
        instance = random_linear_parallel(40, demand=7.5, seed=seed)
        assert_backends_agree(instance.latencies, instance.demand, kind)

    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_generator_mixed_instances(self, kind):
        instance = random_mixed_parallel(30, demand=4.0, seed=5)
        assert_backends_agree(instance.latencies, instance.demand, kind)


class TestEdgeCases:
    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_zero_demand(self, kind):
        links = random_family_links(3)
        assert_backends_agree(links, 0.0, kind)

    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_constant_floor_absorbs_excess(self, kind):
        # A cheap constant link caps the level: the constants must soak up
        # the flow the increasing links cannot take below the floor.
        links = [LinearLatency(1.0, 0.0), ConstantLatency(0.5),
                 ConstantLatency(0.5), LinearLatency(2.0, 0.1)]
        assert_backends_agree(links, 10.0, kind)

    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_all_constant_links(self, kind):
        links = [ConstantLatency(1.0), ConstantLatency(1.0)]
        assert_backends_agree(links, 2.0, kind)

    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_bpr_and_constant_mixture(self, kind):
        links = [BPRLatency(1.0, 2.0), BPRLatency(0.5, 1.0, alpha=0.3),
                 ConstantLatency(1.8), LinearLatency(0.7, 0.2)]
        assert_backends_agree(links, 3.0, kind)

    def test_unknown_kind_raises_on_both_backends(self):
        links = [LinearLatency(1.0)]
        with pytest.raises(ModelError):
            water_fill(links, 1.0, "nope")
        with pytest.raises(ModelError):
            water_fill(links, 1.0, "nope", backend="reference")

    def test_unknown_backend_raises(self):
        with pytest.raises(ModelError):
            water_fill([LinearLatency(1.0)], 1.0, "nash", backend="turbo")


class TestConfigSelection:
    def test_reference_backend_selectable_via_config(self):
        instance = random_mixed_parallel(10, demand=2.0, seed=9)
        config = SolveConfig(kernel_backend="reference")
        ref = parallel_nash(instance, config=config)
        vec = parallel_nash(instance)
        np.testing.assert_allclose(ref.flows, vec.flows, atol=EQ_TOL)
        assert ref.common_value == pytest.approx(vec.common_value, abs=EQ_TOL)

    def test_invalid_kernel_backend_rejected(self):
        with pytest.raises(ModelError):
            SolveConfig(kernel_backend="turbo")

    @pytest.mark.parametrize("seed", [0, 4])
    def test_optop_identical_across_backends(self, seed):
        instance = random_mixed_parallel(14, demand=3.0, seed=seed)
        vec = optop(instance)
        ref = optop(instance, config=SolveConfig(kernel_backend="reference"))
        assert vec.beta == pytest.approx(ref.beta, abs=1e-8)
        np.testing.assert_allclose(vec.strategy.flows, ref.strategy.flows,
                                   atol=1e-8)

    def test_optimum_matches_reference_through_config(self):
        instance = random_linear_parallel(25, demand=6.0, seed=2)
        vec = parallel_optimum(instance)
        ref = parallel_optimum(instance,
                               config=SolveConfig(kernel_backend="reference"))
        np.testing.assert_allclose(vec.flows, ref.flows, atol=EQ_TOL)


class TestMM1NearCapacity:
    """Regression: M/M/1 inverses probed exactly at capacity.

    With demand a hair under the joint capacity the common level is huge and
    the closed-form inverse ``c - f/L`` rounds to ``c`` exactly; evaluating
    the latency there divides by zero.  The inverses now clamp strictly
    inside the domain (``nextafter(c, 0)``), so the solve converges and the
    resulting flows remain evaluatable.
    """

    LINKS = [MM1Latency(1.0), MM1Latency(1000.0)]
    DEMAND = 1001.0 - 1e-9

    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    @pytest.mark.parametrize("backend", ["vectorized", "reference"])
    def test_near_capacity_demand_solves(self, kind, backend):
        flows, level = water_fill(self.LINKS, self.DEMAND, kind,
                                  backend=backend)
        assert np.all(np.isfinite(flows))
        assert flows.sum() == pytest.approx(self.DEMAND, rel=1e-9)
        assert level > 1e6  # the level blows up near capacity
        # Every flow stays strictly inside its link's domain: the latency
        # (and its derivative) must evaluate to a finite number.
        for lat, x in zip(self.LINKS, flows):
            assert x < lat.capacity
            assert np.isfinite(lat.value(float(x)))
            assert np.isfinite(lat.derivative(float(x)))

    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_batch_values_evaluatable_at_solution(self, kind):
        from repro.latency.batch import LatencyBatch

        flows, _ = water_fill(self.LINKS, self.DEMAND, kind)
        values = LatencyBatch(self.LINKS).values(flows)
        assert np.all(np.isfinite(values))

    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_backends_agree_near_capacity(self, kind):
        vec_flows, _ = water_fill(self.LINKS, self.DEMAND, kind)
        ref_flows, _ = water_fill(self.LINKS, self.DEMAND, kind,
                                  backend="reference")
        np.testing.assert_allclose(vec_flows, ref_flows, atol=1e-6)


class TestWaterFillMany:
    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_per_instance_loop(self, kind, seed):
        links = random_family_links(seed)
        rng = np.random.default_rng(1000 + seed)
        demands = np.concatenate([[0.0], rng.uniform(0.1, 8.0, size=7)])
        flows, levels = water_fill_many(links, demands, kind)
        assert flows.shape == (demands.size, len(links))
        for j, demand in enumerate(demands):
            f, level = water_fill(links, float(demand), kind)
            np.testing.assert_allclose(flows[j], f, atol=EQ_TOL)
            if np.isfinite(level):
                assert levels[j] == pytest.approx(level, abs=EQ_TOL,
                                                  rel=EQ_TOL)
            else:
                assert levels[j] == level

    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_reference_backend_agrees(self, kind):
        links = random_family_links(3)
        demands = np.array([0.5, 2.0, 5.0])
        vec_flows, vec_levels = water_fill_many(links, demands, kind)
        ref_flows, ref_levels = water_fill_many(links, demands, kind,
                                                backend="reference")
        np.testing.assert_allclose(vec_flows, ref_flows, atol=EQ_TOL)
        np.testing.assert_allclose(vec_levels, ref_levels, atol=EQ_TOL)

    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_all_linear_closed_form(self, kind):
        links = [LinearLatency(1.0, 0.0), LinearLatency(0.5, 1.0),
                 LinearLatency(2.0, 0.3)]
        demands = np.array([0.0, 1.0, 4.0, 9.5])
        flows, levels = water_fill_many(links, demands, kind)
        for j, demand in enumerate(demands):
            f, level = water_fill(links, float(demand), kind)
            np.testing.assert_allclose(flows[j], f, atol=EQ_TOL)
            assert levels[j] == pytest.approx(level, abs=EQ_TOL)

    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_generic_fallback_rows(self, kind):
        # A generic (no closed-form inverse) link forces the per-demand
        # scalar fallback; results must still match the scalar solver.
        from repro.latency.base import LatencyFunction

        class _WeirdLatency(LatencyFunction):
            def value(self, x):
                return 1.0 + x + 0.1 * np.sinh(x)

            def derivative(self, x):
                return 1.0 + 0.1 * np.cosh(x)

            def integral(self, x):
                return x + 0.5 * x * x + 0.1 * (np.cosh(x) - 1.0)

        links = [_WeirdLatency(), LinearLatency(1.0, 0.5), MM1Latency(4.0)]
        demands = np.array([0.3, 1.5, 3.0])
        flows, levels = water_fill_many(links, demands, kind)
        for j, demand in enumerate(demands):
            f, level = water_fill(links, float(demand), kind)
            np.testing.assert_allclose(flows[j], f, atol=EQ_TOL)
            assert levels[j] == pytest.approx(level, abs=EQ_TOL)

    def test_single_link(self):
        flows, levels = water_fill_many([MM1Latency(3.0)],
                                        np.array([0.0, 1.0, 2.5]), "nash")
        np.testing.assert_allclose(flows[:, 0], [0.0, 1.0, 2.5], atol=EQ_TOL)

    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_duplicate_breakpoints(self, kind):
        # Identical links share one activation breakpoint; the engine must
        # deduplicate the grid without losing a segment.
        links = [LinearLatency(1.0, 1.0), LinearLatency(1.0, 1.0),
                 MonomialLatency(0.5, 3, 1.0), ConstantLatency(1.0)]
        demands = np.array([0.0, 0.5, 2.0, 6.0])
        flows, _ = water_fill_many(links, demands, kind)
        for j, demand in enumerate(demands):
            f, _ = water_fill(links, float(demand), kind)
            np.testing.assert_allclose(flows[j], f, atol=EQ_TOL)

    def test_empty_demands(self):
        flows, levels = water_fill_many([LinearLatency(1.0)], np.empty(0),
                                        "nash")
        assert flows.shape == (0, 1)
        assert levels.shape == (0,)

    def test_rejects_bad_input(self):
        with pytest.raises(ModelError):
            water_fill_many([LinearLatency(1.0)], np.array([-1.0]), "nash")
        with pytest.raises(ModelError):
            water_fill_many([LinearLatency(1.0)], np.array([[1.0]]), "nash")
        with pytest.raises(ModelError):
            water_fill_many([LinearLatency(1.0)], np.array([1.0]), "nope")
        with pytest.raises(ModelError):
            water_fill_many([LinearLatency(1.0)], np.array([1.0]), "nash",
                            backend="turbo")

    def test_prebuilt_batch_reused(self):
        from repro.latency.batch import LatencyBatch

        links = random_family_links(7)
        batch = LatencyBatch(links)
        demands = np.array([1.0, 3.0])
        flows_a, _ = water_fill_many(links, demands, "nash", batch=batch)
        flows_b, _ = water_fill_many(links, demands, "nash")
        np.testing.assert_allclose(flows_a, flows_b, atol=EQ_TOL)
