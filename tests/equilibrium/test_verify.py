"""Tests for the equilibrium-condition verification helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.equilibrium import (
    network_nash,
    network_wardrop_gap,
    parallel_nash,
    parallel_optimality_gap,
    parallel_optimum,
    parallel_wardrop_gap,
)
from repro.instances import braess_paradox, pigou, random_linear_parallel


class TestParallelGaps:
    def test_nash_has_zero_wardrop_gap(self):
        instance = pigou()
        assert parallel_wardrop_gap(instance, parallel_nash(instance).flows) \
            == pytest.approx(0.0, abs=1e-9)

    def test_optimum_has_zero_optimality_gap(self):
        instance = pigou()
        assert parallel_optimality_gap(instance, parallel_optimum(instance).flows) \
            == pytest.approx(0.0, abs=1e-9)

    def test_optimum_has_positive_wardrop_gap_on_pigou(self):
        """The optimum is NOT an equilibrium on Pigou (used link latencies differ)."""
        instance = pigou()
        gap = parallel_wardrop_gap(instance, parallel_optimum(instance).flows)
        assert gap == pytest.approx(0.5)

    def test_nash_has_positive_optimality_gap_on_pigou(self):
        instance = pigou()
        gap = parallel_optimality_gap(instance, parallel_nash(instance).flows)
        assert gap == pytest.approx(1.0)  # marginal 2x=2 on link 1 vs 1 on link 2

    def test_unbalanced_flow_has_positive_gap(self):
        instance = random_linear_parallel(4, demand=2.0, seed=0)
        lopsided = np.array([2.0, 0.0, 0.0, 0.0])
        assert parallel_wardrop_gap(instance, lopsided) > 0.0

    def test_zero_flow_has_zero_gap(self):
        instance = random_linear_parallel(4, demand=2.0, seed=0)
        assert parallel_wardrop_gap(instance, np.zeros(4)) == 0.0


class TestNetworkGap:
    def test_nash_flow_has_small_residual(self):
        instance = braess_paradox()
        nash = network_nash(instance)
        assert network_wardrop_gap(instance, nash.edge_flows) < 1e-6

    def test_bad_flow_has_large_residual(self):
        instance = braess_paradox()
        # Route everything over the two outer paths: the zig-zag is shorter.
        flows = np.array([0.5, 0.5, 0.0, 0.5, 0.5])
        assert network_wardrop_gap(instance, flows) > 0.4
