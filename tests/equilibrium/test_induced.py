"""Tests for induced Stackelberg equilibria (Followers' reaction)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import StrategyError
from repro.equilibrium import (
    induced_network_equilibrium,
    induced_parallel_equilibrium,
    parallel_nash,
    parallel_optimum,
    network_optimum,
)
from repro.instances import pigou, random_linear_parallel, roughgarden_example


class TestInducedParallel:
    def test_null_strategy_reproduces_nash(self, pigou_instance):
        outcome = induced_parallel_equilibrium(pigou_instance, [0.0, 0.0])
        nash = parallel_nash(pigou_instance)
        assert outcome.cost == pytest.approx(nash.cost, abs=1e-9)
        assert outcome.combined_flows == pytest.approx(nash.flows, abs=1e-9)

    def test_paper_strategy_induces_optimum(self, pigou_instance):
        """The Figure 2 strategy <0, 1/2> induces the optimum (Figure 3)."""
        outcome = induced_parallel_equilibrium(pigou_instance, [0.0, 0.5])
        optimum = parallel_optimum(pigou_instance)
        assert outcome.cost == pytest.approx(optimum.cost, abs=1e-9)
        assert outcome.combined_flows == pytest.approx(optimum.flows, abs=1e-9)
        assert outcome.follower_flows == pytest.approx([0.5, 0.0], abs=1e-9)

    def test_leader_share_property(self, pigou_instance):
        outcome = induced_parallel_equilibrium(pigou_instance, [0.0, 0.5])
        assert outcome.leader_share == pytest.approx(0.5)

    def test_full_control_leaves_no_follower_flow(self, pigou_instance):
        outcome = induced_parallel_equilibrium(pigou_instance, [0.5, 0.5])
        assert outcome.follower_flows.sum() == pytest.approx(0.0, abs=1e-9)
        assert outcome.follower_common_latency is None

    def test_wrong_shape_rejected(self, pigou_instance):
        with pytest.raises(StrategyError):
            induced_parallel_equilibrium(pigou_instance, [0.1])

    def test_negative_strategy_rejected(self, pigou_instance):
        with pytest.raises(StrategyError):
            induced_parallel_equilibrium(pigou_instance, [-0.1, 0.0])

    def test_overfull_strategy_rejected(self, pigou_instance):
        with pytest.raises(StrategyError):
            induced_parallel_equilibrium(pigou_instance, [1.0, 0.5])

    def test_followers_equalise_latencies(self):
        instance = random_linear_parallel(4, demand=2.0, seed=2)
        strategy = np.array([0.3, 0.0, 0.2, 0.0])
        outcome = induced_parallel_equilibrium(instance, strategy)
        latencies = instance.latencies_at(outcome.combined_flows)
        used = outcome.follower_flows > 1e-9
        if np.any(used):
            spread = latencies[used].max() - latencies[used].min()
            assert spread < 1e-7

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=0.4), min_size=4, max_size=4))
    def test_total_flow_conserved(self, strategy):
        instance = random_linear_parallel(4, demand=2.0, seed=3)
        outcome = induced_parallel_equilibrium(instance, strategy)
        assert outcome.combined_flows.sum() == pytest.approx(2.0, abs=1e-7)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=0.4), min_size=4, max_size=4))
    def test_induced_cost_at_least_optimum(self, strategy):
        instance = random_linear_parallel(4, demand=2.0, seed=3)
        outcome = induced_parallel_equilibrium(instance, strategy)
        optimum = parallel_optimum(instance)
        assert outcome.cost >= optimum.cost - 1e-9


class TestInducedNetwork:
    def test_null_strategy_reproduces_network_nash(self):
        instance = roughgarden_example()
        zero = np.zeros(instance.network.num_edges)
        outcome = induced_network_equilibrium(instance, zero, [1.0])
        from repro.equilibrium import network_nash
        nash = network_nash(instance)
        assert outcome.cost == pytest.approx(nash.cost, rel=1e-5)

    def test_optimum_strategy_keeps_optimum(self):
        """Pre-loading the entire optimum leaves no room for deviation."""
        instance = roughgarden_example()
        optimum = network_optimum(instance)
        outcome = induced_network_equilibrium(instance, optimum.edge_flows, [0.0])
        assert outcome.cost == pytest.approx(optimum.cost, rel=1e-6)

    def test_wrong_remaining_demand_rejected(self):
        instance = roughgarden_example()
        zero = np.zeros(instance.network.num_edges)
        with pytest.raises(StrategyError):
            induced_network_equilibrium(instance, zero, [2.0])

    def test_wrong_demand_count_rejected(self):
        instance = roughgarden_example()
        zero = np.zeros(instance.network.num_edges)
        with pytest.raises(StrategyError):
            induced_network_equilibrium(instance, zero, [0.5, 0.5])
