"""Tests for the Frank–Wolfe network flow solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, ModelError
from repro.latency import ConstantLatency, LinearLatency
from repro.network import Commodity, Network, NetworkInstance
from repro.equilibrium import FrankWolfeOptions, frank_wolfe, network_wardrop_gap
from repro.equilibrium.frank_wolfe import all_or_nothing
from repro.instances import braess_paradox, grid_network


@pytest.fixture
def two_route_instance():
    """Pigou embedded as a network: two parallel s-t edges."""
    net = Network()
    net.add_edge("s", "t", LinearLatency(1.0, 0.0))
    net.add_edge("s", "t", ConstantLatency(1.0))
    return NetworkInstance.single_commodity(net, "s", "t", 1.0)


class TestAllOrNothing:
    def test_routes_everything_on_cheapest_path(self, two_route_instance):
        flows = all_or_nothing(two_route_instance, np.array([0.2, 1.0]))
        assert flows == pytest.approx([1.0, 0.0])

    def test_multicommodity_accumulates(self):
        net = Network()
        net.add_edge("s", "m", LinearLatency(1.0))
        net.add_edge("m", "t", LinearLatency(1.0))
        instance = NetworkInstance(net, [Commodity("s", "t", 1.0),
                                         Commodity("m", "t", 2.0)])
        flows = all_or_nothing(instance, np.array([1.0, 1.0]))
        assert flows == pytest.approx([1.0, 3.0])


class TestFrankWolfeOnPigou:
    def test_nash_matches_closed_form(self, two_route_instance):
        result = frank_wolfe(two_route_instance, "nash",
                             FrankWolfeOptions(tolerance=1e-7))
        assert result.edge_flows == pytest.approx([1.0, 0.0], abs=1e-4)
        assert result.cost == pytest.approx(1.0, abs=1e-4)
        assert result.converged

    def test_optimum_matches_closed_form(self, two_route_instance):
        result = frank_wolfe(two_route_instance, "optimum",
                             FrankWolfeOptions(tolerance=1e-7))
        assert result.edge_flows == pytest.approx([0.5, 0.5], abs=1e-3)
        assert result.cost == pytest.approx(0.75, abs=1e-5)

    def test_unknown_kind_rejected(self, two_route_instance):
        with pytest.raises(ModelError):
            frank_wolfe(two_route_instance, "bogus")


class TestFrankWolfeOnNetworks:
    def test_braess_nash_cost(self):
        instance = braess_paradox()
        result = frank_wolfe(instance, "nash", FrankWolfeOptions(tolerance=1e-7))
        assert result.cost == pytest.approx(2.0, abs=1e-3)

    def test_braess_optimum_cost(self):
        instance = braess_paradox()
        result = frank_wolfe(instance, "optimum", FrankWolfeOptions(tolerance=1e-7))
        assert result.cost == pytest.approx(1.5, abs=1e-3)

    def test_wardrop_residual_small_on_grid(self):
        instance = grid_network(3, 3, demand=2.0, seed=0)
        result = frank_wolfe(instance, "nash", FrankWolfeOptions(tolerance=1e-8))
        assert network_wardrop_gap(instance, result.edge_flows) < 1e-3

    def test_flow_conservation_on_grid(self):
        instance = grid_network(3, 3, demand=2.0, seed=1)
        result = frank_wolfe(instance, "nash", FrankWolfeOptions(tolerance=1e-7))
        instance.check_flow_conservation(result.edge_flows, atol=1e-5)

    def test_iteration_budget_flag(self):
        instance = grid_network(3, 3, demand=2.0, seed=2)
        result = frank_wolfe(instance, "nash",
                             FrankWolfeOptions(tolerance=1e-14, max_iterations=5))
        assert not result.converged
        assert result.iterations == 5

    def test_iteration_budget_raise(self):
        instance = grid_network(3, 3, demand=2.0, seed=2)
        with pytest.raises(ConvergenceError):
            frank_wolfe(instance, "nash",
                        FrankWolfeOptions(tolerance=1e-14, max_iterations=5,
                                          raise_on_failure=True))

    def test_gap_decreases_with_budget(self):
        instance = grid_network(3, 3, demand=2.0, seed=3)
        loose = frank_wolfe(instance, "nash",
                            FrankWolfeOptions(tolerance=1e-16, max_iterations=10))
        tight = frank_wolfe(instance, "nash",
                            FrankWolfeOptions(tolerance=1e-16, max_iterations=200))
        assert tight.relative_gap <= loose.relative_gap + 1e-12
