"""Frank–Wolfe kernels: CSR all-or-nothing, source grouping, Newton search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.equilibrium.frank_wolfe import (
    FrankWolfeOptions,
    all_or_nothing,
    frank_wolfe,
)
from repro.exceptions import ModelError
from repro.instances import grid_network, layered_network
from repro.latency import ConstantLatency, LinearLatency, MonomialLatency
from repro.network.graph import Network
from repro.network.instance import Commodity, NetworkInstance
from repro.paths.dijkstra import HAVE_SPARSE_DIJKSTRA, ShortestPathEngine


def multi_source_instance():
    net = Network()
    net.add_edge("s", "a", LinearLatency(1.0, 0.0))   # zero cost at zero flow
    net.add_edge("s", "a", LinearLatency(2.0, 0.5))   # parallel, costlier
    net.add_edge("a", "t", LinearLatency(1.0, 0.2))
    net.add_edge("s", "t", ConstantLatency(1.0))
    net.add_edge("a", "u", MonomialLatency(0.5, 2.0, 0.0))
    return NetworkInstance(net, [
        Commodity("s", "t", 1.0),
        Commodity("s", "a", 2.0),   # shares the source with the first
        Commodity("a", "t", 0.5),
        Commodity("a", "u", 0.25),  # shares the source with the third
    ])


class TestAllOrNothingKernels:
    def test_csr_matches_reference_on_parallel_and_zero_cost_edges(self):
        instance = multi_source_instance()
        costs = instance.latencies_at(np.zeros(instance.network.num_edges))
        vec = all_or_nothing(instance, costs)
        ref = all_or_nothing(instance, costs, kernel="reference")
        np.testing.assert_allclose(vec, ref)

    @pytest.mark.parametrize("seed", range(5))
    def test_csr_matches_reference_path_costs_on_grids(self, seed):
        instance = grid_network(5, 5, demand=3.0, seed=seed)
        rng = np.random.default_rng(seed)
        costs = rng.uniform(0.0, 2.0, size=instance.network.num_edges)
        vec = all_or_nothing(instance, costs)
        ref = all_or_nothing(instance, costs, kernel="reference")
        # Several equally-short paths may exist; the routed *cost* is the
        # invariant both kernels must agree on.
        assert float(np.dot(costs, vec)) == pytest.approx(
            float(np.dot(costs, ref)), abs=1e-9)
        assert vec.sum() == pytest.approx(ref.sum(), abs=1e-9)

    def test_validated_costs_skip_revalidation(self):
        instance = multi_source_instance()
        costs = np.zeros(instance.network.num_edges)
        flows = all_or_nothing(instance, costs, validated=True)
        assert flows.sum() > 0.0

    def test_unreachable_sink_raises_on_both_kernels(self):
        net = Network()
        net.add_edge("s", "a", LinearLatency(1.0))
        net.add_edge("t", "b", LinearLatency(1.0))  # t has no incoming path
        instance = NetworkInstance(net, [Commodity("s", "t", 1.0)])
        costs = np.zeros(net.num_edges)
        with pytest.raises(ModelError):
            all_or_nothing(instance, costs)
        with pytest.raises(ModelError):
            all_or_nothing(instance, costs, kernel="reference")


@pytest.mark.skipif(not HAVE_SPARSE_DIJKSTRA, reason="scipy csgraph missing")
class TestShortestPathEngine:
    def test_batched_sources_share_one_run(self):
        instance = multi_source_instance()
        costs = instance.latencies_at(np.zeros(instance.network.num_edges))
        engine = ShortestPathEngine(instance.network, costs)
        engine.run(["s", "a"])
        assert engine.distance("s", "a") == pytest.approx(0.0)
        path = engine.path_edges("s", "t")
        assert path  # some path exists
        with pytest.raises(ModelError):
            engine.path_edges("u", "t")  # 'u' was not part of run()

    def test_parallel_edges_use_cheapest_copy(self):
        instance = multi_source_instance()
        costs = np.array([5.0, 0.1, 0.0, 10.0, 1.0])  # parallel copy cheaper
        engine = ShortestPathEngine(instance.network, costs)
        engine.run(["s"])
        assert engine.path_edges("s", "a") == [1]

    def test_repeated_runs_accumulate_without_corrupting_earlier_sources(self):
        instance = multi_source_instance()
        costs = instance.latencies_at(np.zeros(instance.network.num_edges))
        engine = ShortestPathEngine(instance.network, costs)
        engine.run(["s"])
        before = engine.distance("s", "t")
        engine.run(["a"])  # must not invalidate the 's' tree
        assert engine.distance("s", "t") == pytest.approx(before)
        assert engine.path_edges("a", "t")  # new source answered too


class TestFrankWolfeKernels:
    @pytest.mark.parametrize("kind", ["nash", "optimum"])
    def test_kernels_agree_on_layered_network(self, kind):
        options_v = FrankWolfeOptions(tolerance=1e-9, max_iterations=5000)
        options_r = FrankWolfeOptions(tolerance=1e-9, max_iterations=5000,
                                      kernel="reference")
        instance = layered_network(3, 3, demand=2.0, seed=4)
        vec = frank_wolfe(instance, kind, options_v)
        ref = frank_wolfe(instance, kind, options_r)
        assert vec.cost == pytest.approx(ref.cost, rel=1e-6)
        assert vec.beckmann == pytest.approx(ref.beckmann, rel=1e-6)

    def test_newton_line_search_converges_on_polynomial_grid(self):
        instance = grid_network(4, 4, demand=2.0, seed=7)
        assert instance.network.latency_batch().supports_newton
        result = frank_wolfe(instance, "optimum",
                             FrankWolfeOptions(tolerance=1e-7,
                                               max_iterations=10000))
        assert result.converged
        instance.check_flow_conservation(result.edge_flows)

    def test_invalid_kernel_rejected(self):
        instance = multi_source_instance()
        with pytest.raises(ModelError):
            frank_wolfe(instance, "nash", FrankWolfeOptions(kernel="turbo"))
