"""Tests for the canonical paper instances."""

from __future__ import annotations

import pytest

from repro.exceptions import InstanceError
from repro.instances import (
    braess_paradox,
    figure_4_example,
    pigou,
    pigou_nonlinear,
    roughgarden_example,
    two_speed_example,
)
from repro.latency import ConstantLatency, LinearLatency


class TestPigou:
    def test_structure(self):
        instance = pigou()
        assert instance.num_links == 2
        assert isinstance(instance.latencies[0], LinearLatency)
        assert isinstance(instance.latencies[1], ConstantLatency)
        assert instance.demand == 1.0

    def test_custom_demand(self):
        assert pigou(2.5).demand == 2.5

    def test_nonlinear_variant(self):
        instance = pigou_nonlinear(3.0)
        assert float(instance.latencies[0].value(0.5)) == pytest.approx(0.125)

    def test_nonlinear_rejects_degree_below_one(self):
        with pytest.raises(Exception):
            pigou_nonlinear(0.5)


class TestFigure4:
    def test_latency_values_match_caption(self):
        instance = figure_4_example()
        assert float(instance.latencies[0].value(1.0)) == pytest.approx(1.0)
        assert float(instance.latencies[1].value(1.0)) == pytest.approx(1.5)
        assert float(instance.latencies[2].value(1.0)) == pytest.approx(2.0)
        assert float(instance.latencies[3].value(1.0)) == pytest.approx(2.5 + 1 / 6)
        assert float(instance.latencies[4].value(1.0)) == pytest.approx(0.7)

    def test_names(self):
        assert figure_4_example().names == ("M1", "M2", "M3", "M4", "M5")


class TestTwoSpeed:
    def test_parametrisation(self):
        instance = two_speed_example(fast_slope=2.0, slow_constant=3.0, demand=1.5)
        assert float(instance.latencies[0].value(1.0)) == pytest.approx(2.0)
        assert float(instance.latencies[1].value(1.0)) == pytest.approx(3.0)
        assert instance.demand == 1.5


class TestBraess:
    def test_structure(self):
        instance = braess_paradox()
        assert instance.network.num_nodes == 4
        assert instance.network.num_edges == 5
        assert instance.is_single_commodity

    def test_edge_latencies(self):
        instance = braess_paradox()
        labels = {(e.tail, e.head): e.latency for e in instance.network.edges}
        assert float(labels[("s", "v")].value(1.0)) == pytest.approx(1.0)
        assert float(labels[("v", "w")].value(1.0)) == pytest.approx(0.0)
        assert float(labels[("s", "w")].value(1.0)) == pytest.approx(1.0)


class TestRoughgardenExample:
    def test_structure(self):
        instance = roughgarden_example()
        assert instance.network.num_nodes == 4
        assert instance.network.num_edges == 5

    def test_constant_edges_value(self):
        instance = roughgarden_example(epsilon=0.05)
        labels = {(e.tail, e.head): e.latency for e in instance.network.edges}
        assert float(labels[("s", "w")].value(0.0)) == pytest.approx(2.5 - 0.3)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(InstanceError):
            roughgarden_example(epsilon=0.3)
        with pytest.raises(InstanceError):
            roughgarden_example(epsilon=-0.01)
