"""Tests for the random instance generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InstanceError
from repro.instances import (
    grid_network,
    layered_network,
    mm1_server_farm,
    random_affine_common_slope,
    random_linear_parallel,
    random_mixed_parallel,
    random_mm1_parallel,
    random_multicommodity_instance,
    random_polynomial_parallel,
)
from repro.latency import LinearLatency, MM1Latency
from repro.paths import all_simple_paths


class TestDeterminism:
    """Same seed -> identical instance; different seed -> (generally) different."""

    def test_linear_parallel_deterministic(self):
        a = random_linear_parallel(5, seed=3)
        b = random_linear_parallel(5, seed=3)
        for la, lb in zip(a.latencies, b.latencies):
            assert la.slope == lb.slope and la.intercept == lb.intercept

    def test_linear_parallel_seed_sensitivity(self):
        a = random_linear_parallel(5, seed=3)
        b = random_linear_parallel(5, seed=4)
        assert any(la.slope != lb.slope for la, lb in zip(a.latencies, b.latencies))

    def test_grid_network_deterministic(self):
        a = grid_network(3, 3, seed=1)
        b = grid_network(3, 3, seed=1)
        flows = np.linspace(0.1, 1.0, a.network.num_edges)
        assert a.cost(flows) == pytest.approx(b.cost(flows))

    def test_multicommodity_deterministic(self):
        a = random_multicommodity_instance(3, 3, num_commodities=2, seed=5)
        b = random_multicommodity_instance(3, 3, num_commodities=2, seed=5)
        assert [c.source for c in a.commodities] == [c.source for c in b.commodities]


class TestParallelGenerators:
    def test_link_counts(self):
        assert random_linear_parallel(7).num_links == 7
        assert random_polynomial_parallel(4).num_links == 4
        assert random_mixed_parallel(6).num_links == 6

    def test_common_slope_family(self):
        instance = random_affine_common_slope(5, slope=2.0, seed=0)
        assert all(isinstance(lat, LinearLatency) and lat.slope == 2.0
                   for lat in instance.latencies)

    def test_common_slope_intercepts_sorted(self):
        instance = random_affine_common_slope(5, seed=0)
        intercepts = [lat.intercept for lat in instance.latencies]
        assert intercepts == sorted(intercepts)

    def test_mixed_has_increasing_link(self):
        instance = random_mixed_parallel(6, seed=2, constant_fraction=1.0)
        assert any(not lat.is_constant for lat in instance.latencies)

    def test_invalid_parameters(self):
        with pytest.raises(InstanceError):
            random_linear_parallel(0)
        with pytest.raises(InstanceError):
            random_polynomial_parallel(3, max_degree=0)
        with pytest.raises(InstanceError):
            random_affine_common_slope(3, slope=0.0)
        with pytest.raises(InstanceError):
            random_mixed_parallel(3, constant_fraction=1.5)


class TestMM1Generators:
    def test_farm_composition(self):
        farm = mm1_server_farm(2, 3, fast_capacity=8.0, slow_capacity=2.0)
        assert farm.num_links == 5
        assert all(isinstance(lat, MM1Latency) for lat in farm.latencies)
        assert farm.names[:2] == ("fast1", "fast2")

    def test_farm_demand_below_capacity(self):
        farm = mm1_server_farm(1, 1, fast_capacity=3.0, slow_capacity=1.0,
                               utilisation=0.9)
        assert farm.demand < 4.0

    def test_farm_explicit_demand_validated(self):
        with pytest.raises(InstanceError):
            mm1_server_farm(1, 1, fast_capacity=1.0, slow_capacity=1.0, demand=2.5)

    def test_farm_needs_links(self):
        with pytest.raises(InstanceError):
            mm1_server_farm(0, 0)

    def test_random_mm1_feasible(self):
        instance = random_mm1_parallel(6, seed=1)
        capacity = sum(lat.capacity for lat in instance.latencies)
        assert instance.demand < capacity

    def test_random_mm1_invalid_fraction(self):
        with pytest.raises(InstanceError):
            random_mm1_parallel(3, demand_fraction=1.2)


class TestNetworkGenerators:
    def test_grid_dimensions(self):
        instance = grid_network(3, 4, seed=0)
        assert instance.network.num_nodes == 12
        # Right edges: 3 * 3, down edges: 2 * 4.
        assert instance.network.num_edges == 17

    def test_grid_source_sink_connected(self):
        instance = grid_network(3, 3, seed=0)
        paths = all_simple_paths(instance.network, (0, 0), (2, 2))
        assert len(paths) == 6  # C(4, 2) lattice paths

    def test_grid_rejects_tiny_grids(self):
        with pytest.raises(InstanceError):
            grid_network(1, 3)

    def test_grid_bpr_family(self):
        instance = grid_network(3, 3, seed=0, latency_family="bpr")
        assert instance.network.num_edges == 12

    def test_unknown_latency_family(self):
        with pytest.raises(InstanceError):
            grid_network(3, 3, latency_family="exotic")

    def test_layered_network_connected(self):
        instance = layered_network(3, 2, seed=1)
        paths = all_simple_paths(instance.network, "s", "t")
        assert paths  # at least the matching path exists

    def test_layered_invalid_parameters(self):
        with pytest.raises(InstanceError):
            layered_network(0, 2)

    def test_multicommodity_counts(self):
        instance = random_multicommodity_instance(3, 3, num_commodities=3, seed=2)
        assert instance.num_commodities == 3
        for commodity in instance.commodities:
            assert commodity.source != commodity.sink
            assert commodity.demand > 0.0

    def test_multicommodity_endpoints_reachable(self):
        instance = random_multicommodity_instance(3, 3, num_commodities=2, seed=4)
        for commodity in instance.commodities:
            paths = all_simple_paths(instance.network, commodity.source,
                                     commodity.sink, max_paths=50_000)
            assert paths

    def test_multicommodity_invalid_parameters(self):
        with pytest.raises(InstanceError):
            random_multicommodity_instance(1, 1)
        with pytest.raises(InstanceError):
            random_multicommodity_instance(3, 3, num_commodities=0)
