"""Tests for the adversarial benchmark generators.

Beyond the usual factory behaviour (shape, typed errors, seed
determinism in-process), the suite pins two properties the bench
subsystem depends on:

* **cross-process determinism** — the artifact store addresses suite
  cells by instance digest, so the same ``(generator, params, seed)``
  must hash identically in a *fresh interpreter*, not just a fresh call
  (guards against accidental set/dict-order or object-identity leaks);
* **no shared RNG state** — ``seed=None`` draws from a module-private
  stream, never the global NumPy RNG, so unseeded calls stay independent
  of (and invisible to) user code that seeds ``np.random``.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import InstanceError, ModelError
from repro.instances import (
    heavy_tail_capacity,
    mixed_family_soup,
    near_degenerate_breakpoints,
    pigou_chain,
)
from repro.latency import (
    ConstantLatency,
    LinearLatency,
    MM1Latency,
    MonomialLatency,
    PolynomialLatency,
)
from repro.serialization import instance_digest
from repro.study import get_generator

SRC_DIR = Path(__file__).resolve().parents[2] / "src"

ADVERSARIAL_GENERATORS = (
    "near_degenerate_breakpoints",
    "heavy_tail_capacity",
    "pigou_chain",
    "mixed_family_soup",
)


class TestNearDegenerateBreakpoints:
    def test_shape_and_clustering(self):
        instance = near_degenerate_breakpoints(6, demand=2.0, seed=1,
                                               epsilon=1e-6)
        assert instance.num_links == 6
        assert instance.demand == 2.0
        intercepts = [lat.intercept for lat in instance.latencies]
        assert max(intercepts) - min(intercepts) <= 1e-6
        assert intercepts == sorted(intercepts)
        assert all(isinstance(lat, LinearLatency) and lat.slope > 0
                   for lat in instance.latencies)

    def test_deterministic(self):
        a = near_degenerate_breakpoints(5, seed=9)
        b = near_degenerate_breakpoints(5, seed=9)
        assert instance_digest(a) == instance_digest(b)

    @pytest.mark.parametrize("kwargs", [
        {"num_links": 1},
        {"num_links": 3, "epsilon": 0.0},
        {"num_links": 3, "epsilon": -1e-9},
        {"num_links": 3, "base_latency": -0.1},
        {"num_links": 3, "demand": 0.0},
    ])
    def test_degenerate_params_raise(self, kwargs):
        with pytest.raises(InstanceError):
            near_degenerate_breakpoints(**kwargs)


class TestHeavyTailCapacity:
    def test_near_saturation(self):
        instance = heavy_tail_capacity(5, seed=2, demand_fraction=0.95)
        capacities = [lat.capacity for lat in instance.latencies]
        assert all(isinstance(lat, MM1Latency) for lat in instance.latencies)
        assert instance.demand == pytest.approx(0.95 * sum(capacities))

    def test_tail_is_heavy(self):
        # Pooled over seeds, a Pareto(1.5) draw produces a max/median ratio
        # a light-tailed generator essentially never reaches.
        ratios = []
        for seed in range(20):
            instance = heavy_tail_capacity(10, seed=seed, tail_index=1.5)
            caps = sorted(lat.capacity for lat in instance.latencies)
            ratios.append(caps[-1] / caps[len(caps) // 2])
        assert max(ratios) > 5.0

    @pytest.mark.parametrize("kwargs", [
        {"num_links": 0},
        {"num_links": 3, "demand_fraction": 0.0},
        {"num_links": 3, "demand_fraction": 1.0},
        {"num_links": 3, "tail_index": 0.0},
        {"num_links": 3, "scale": -1.0},
    ])
    def test_degenerate_params_raise(self, kwargs):
        with pytest.raises(InstanceError):
            heavy_tail_capacity(**kwargs)


class TestPigouChain:
    def test_block_structure(self):
        instance = pigou_chain(3, degree=2.0, cost_ratio=4.0)
        assert instance.num_links == 6
        assert instance.demand == 3.0
        constants = [lat for lat in instance.latencies
                     if isinstance(lat, ConstantLatency)]
        roads = [lat for lat in instance.latencies
                 if isinstance(lat, MonomialLatency)]
        assert len(constants) == len(roads) == 3
        assert [lat.value(0.0) for lat in constants] == [1.0, 4.0, 16.0]

    def test_deterministic_without_seed(self):
        assert instance_digest(pigou_chain(2)) == \
            instance_digest(pigou_chain(2))

    @pytest.mark.parametrize("kwargs", [
        {"num_blocks": 0},
        {"num_blocks": 2, "degree": 0.5},
        {"num_blocks": 2, "cost_ratio": 1.0},
        {"num_blocks": 2, "demand": 0.0},
    ])
    def test_degenerate_params_raise(self, kwargs):
        with pytest.raises(InstanceError):
            pigou_chain(**kwargs)


class TestMixedFamilySoup:
    def test_contains_all_families(self):
        instance = mixed_family_soup(10, demand=1.0, seed=4)
        kinds = {type(lat) for lat in instance.latencies}
        assert kinds == {LinearLatency, ConstantLatency, MonomialLatency,
                         PolynomialLatency, MM1Latency}

    def test_mm1_links_can_carry_demand(self):
        instance = mixed_family_soup(10, demand=3.0, seed=5)
        for lat in instance.latencies:
            if isinstance(lat, MM1Latency):
                assert lat.capacity > 3.0

    @pytest.mark.parametrize("kwargs", [
        {"num_links": 4},
        {"num_links": 5, "demand": 0.0},
    ])
    def test_degenerate_params_raise(self, kwargs):
        with pytest.raises(InstanceError):
            mixed_family_soup(**kwargs)


class TestRegistry:
    """The generators are first-class registry citizens with JSON schemas."""

    @pytest.mark.parametrize("name", ADVERSARIAL_GENERATORS)
    def test_registered_with_schema(self, name):
        entry = get_generator(name)
        assert entry.schema["type"] == "object"
        assert entry.description

    def test_build_validates_schema(self):
        entry = get_generator("near_degenerate_breakpoints")
        with pytest.raises(ModelError):
            entry.build({"num_links": 1}, seed=0)          # below minimum
        with pytest.raises(ModelError):
            entry.build({"num_links": 3, "frob": 1}, seed=0)  # unknown param
        with pytest.raises(ModelError):
            entry.build({}, seed=0)                        # missing required

    def test_build_wraps_degenerate_params_as_model_error(self):
        entry = get_generator("heavy_tail_capacity")
        # Passes the schema (exclusiveMaximum is 1) but saturates inside
        # the factory -> the registry re-raises as its own typed error.
        with pytest.raises(ModelError):
            entry.build({"num_links": 3, "demand_fraction": 0.999999,
                         "scale": 0.0}, seed=0)

    def test_pigou_chain_is_unseeded(self):
        entry = get_generator("pigou_chain")
        assert not entry.seeded
        a = entry.build({"num_blocks": 2}, seed=0)
        b = entry.build({"num_blocks": 2}, seed=17)
        assert instance_digest(a) == instance_digest(b)


_SUBPROCESS_SNIPPET = """
import json, sys
from repro.instances import (heavy_tail_capacity, mixed_family_soup,
                             near_degenerate_breakpoints, pigou_chain)
from repro.serialization import instance_digest

digests = {
    "neardeg": instance_digest(near_degenerate_breakpoints(4, seed=7)),
    "heavy": instance_digest(heavy_tail_capacity(4, seed=7)),
    "chain": instance_digest(pigou_chain(2)),
    "soup": instance_digest(mixed_family_soup(6, seed=7)),
}
json.dump(digests, sys.stdout, sort_keys=True)
"""


def _digests_in_fresh_interpreter() -> str:
    result = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SNIPPET],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": str(SRC_DIR), "PYTHONHASHSEED": "random"},
    )
    return result.stdout


def test_digests_stable_across_fresh_interpreters():
    first = _digests_in_fresh_interpreter()
    second = _digests_in_fresh_interpreter()
    assert first == second
    assert len(set(first)) > 1  # sanity: non-empty JSON payload


class TestUnseededRng:
    """seed=None must not touch (or be touched by) global RNG state."""

    def test_unseeded_calls_are_independent(self):
        a = near_degenerate_breakpoints(4, seed=None)
        b = near_degenerate_breakpoints(4, seed=None)
        assert instance_digest(a) != instance_digest(b)

    def test_unseeded_ignores_global_numpy_seed(self):
        np.random.seed(0)
        a = heavy_tail_capacity(4, seed=None)
        np.random.seed(0)
        b = heavy_tail_capacity(4, seed=None)
        assert instance_digest(a) != instance_digest(b)

    def test_unseeded_does_not_consume_global_numpy_state(self):
        np.random.seed(123)
        expected = np.random.RandomState(123).uniform()
        mixed_family_soup(6, seed=None)
        assert np.random.uniform() == expected
