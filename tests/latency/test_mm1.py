"""Tests for M/M/1 queueing latencies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import LatencyDomainError, ModelError
from repro.latency import MM1Latency


class TestMM1Latency:
    def test_value(self):
        lat = MM1Latency(2.0)
        assert lat.value(1.0) == pytest.approx(1.0)

    def test_value_diverges_near_capacity(self):
        lat = MM1Latency(1.0)
        assert lat.value(0.999) > 100.0

    def test_domain_violation_raises(self):
        lat = MM1Latency(1.0)
        with pytest.raises(LatencyDomainError):
            lat.value(1.0)
        with pytest.raises(LatencyDomainError):
            lat.value(2.0)

    def test_derivative(self):
        lat = MM1Latency(2.0)
        # d/dx (2-x)^-1 = (2-x)^-2 -> at x=1: 1
        assert lat.derivative(1.0) == pytest.approx(1.0)

    def test_integral(self):
        lat = MM1Latency(2.0)
        assert lat.integral(1.0) == pytest.approx(np.log(2.0))

    def test_marginal_cost(self):
        lat = MM1Latency(2.0)
        # c/(c-x)^2 at x=1: 2
        assert lat.marginal_cost(1.0) == pytest.approx(2.0)

    def test_inverse_value(self):
        lat = MM1Latency(2.0)
        assert lat.inverse_value(1.0) == pytest.approx(1.0)

    def test_inverse_value_below_free_flow(self):
        lat = MM1Latency(2.0)
        assert lat.inverse_value(0.1) == 0.0

    def test_inverse_marginal(self):
        lat = MM1Latency(2.0)
        assert lat.inverse_marginal(2.0) == pytest.approx(1.0)

    def test_domain_upper_is_capacity(self):
        assert MM1Latency(3.5).domain_upper == 3.5

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ModelError):
            MM1Latency(0.0)
        with pytest.raises(ModelError):
            MM1Latency(-1.0)

    def test_vectorised(self):
        lat = MM1Latency(4.0)
        xs = np.array([0.0, 1.0, 2.0])
        assert np.allclose(lat.value(xs), [0.25, 1.0 / 3.0, 0.5])

    @given(st.floats(min_value=0.5, max_value=20.0),
           st.floats(min_value=0.0, max_value=0.95))
    def test_inverse_roundtrip(self, capacity, utilisation):
        lat = MM1Latency(capacity)
        x = utilisation * capacity
        assert lat.inverse_value(float(lat.value(x))) == pytest.approx(x, abs=1e-8)

    @given(st.floats(min_value=0.5, max_value=20.0),
           st.floats(min_value=0.0, max_value=0.9))
    def test_strictly_increasing(self, capacity, utilisation):
        lat = MM1Latency(capacity)
        x = utilisation * capacity
        assert lat.value(x + 0.01 * capacity) > lat.value(x)
