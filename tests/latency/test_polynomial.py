"""Tests for polynomial, monomial and BPR latencies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ModelError
from repro.latency import BPRLatency, MonomialLatency, PolynomialLatency


class TestPolynomialLatency:
    def test_value(self):
        lat = PolynomialLatency([1.0, 2.0, 3.0])  # 1 + 2x + 3x^2
        assert lat.value(2.0) == pytest.approx(1 + 4 + 12)

    def test_derivative(self):
        lat = PolynomialLatency([1.0, 2.0, 3.0])  # derivative 2 + 6x
        assert lat.derivative(2.0) == pytest.approx(14.0)

    def test_integral(self):
        lat = PolynomialLatency([1.0, 2.0])  # int = x + x^2
        assert lat.integral(3.0) == pytest.approx(12.0)

    def test_degree(self):
        assert PolynomialLatency([1.0, 0.0, 2.0]).degree == 2

    def test_trailing_zeros_trimmed(self):
        assert PolynomialLatency([1.0, 2.0, 0.0]).degree == 1

    def test_constant_detection(self):
        assert PolynomialLatency([2.0]).is_constant
        assert not PolynomialLatency([2.0, 1.0]).is_constant

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ModelError):
            PolynomialLatency([1.0, -0.5])

    def test_empty_coefficients_rejected(self):
        with pytest.raises(ModelError):
            PolynomialLatency([])

    def test_numeric_inverse_value(self):
        lat = PolynomialLatency([0.0, 0.0, 1.0])  # x^2
        assert lat.inverse_value(4.0) == pytest.approx(2.0, abs=1e-8)

    @given(st.lists(st.floats(min_value=0.0, max_value=3.0), min_size=2, max_size=5)
           .filter(lambda cs: any(c > 1e-6 for c in cs[1:])),
           st.floats(min_value=0.0, max_value=5.0))
    def test_marginal_cost_consistency(self, coeffs, x):
        lat = PolynomialLatency(coeffs)
        expected = float(lat.value(x)) + x * float(lat.derivative(x))
        assert float(lat.marginal_cost(x)) == pytest.approx(expected, rel=1e-9)


class TestMonomialLatency:
    def test_value(self):
        lat = MonomialLatency(2.0, 3.0, 1.0)  # 2x^3 + 1
        assert lat.value(2.0) == pytest.approx(17.0)

    def test_derivative(self):
        lat = MonomialLatency(2.0, 3.0)
        assert lat.derivative(2.0) == pytest.approx(24.0)

    def test_integral(self):
        lat = MonomialLatency(4.0, 3.0)  # integral x^4
        assert lat.integral(2.0) == pytest.approx(16.0)

    def test_inverse_value(self):
        lat = MonomialLatency(1.0, 2.0)
        assert lat.inverse_value(9.0) == pytest.approx(3.0)

    def test_inverse_marginal(self):
        lat = MonomialLatency(1.0, 2.0)  # marginal 3x^2
        assert lat.inverse_marginal(12.0) == pytest.approx(2.0)

    def test_degree_below_one_rejected(self):
        with pytest.raises(ModelError):
            MonomialLatency(1.0, 0.5)

    def test_pigou_degree_grows_anarchy(self):
        # l(x) = x^d on [0, 1]: Nash puts everything on the monomial link.
        low = MonomialLatency(1.0, 1.0)
        high = MonomialLatency(1.0, 8.0)
        assert high.value(0.5) < low.value(0.5)  # much flatter inside (0,1)


class TestBPRLatency:
    def test_free_flow_value(self):
        lat = BPRLatency(free_flow_time=2.0, capacity=1.0)
        assert lat.value(0.0) == pytest.approx(2.0)

    def test_value_at_capacity(self):
        lat = BPRLatency(free_flow_time=1.0, capacity=2.0, alpha=0.15, beta=4.0)
        assert lat.value(2.0) == pytest.approx(1.15)

    def test_derivative_positive(self):
        lat = BPRLatency(free_flow_time=1.0, capacity=1.0)
        assert lat.derivative(0.5) > 0.0

    def test_integral_matches_numeric(self):
        lat = BPRLatency(free_flow_time=1.0, capacity=1.5, alpha=0.3, beta=3.0)
        xs = np.linspace(0.0, 2.0, 2001)
        numeric = np.trapezoid(lat.value(xs), xs)
        assert float(lat.integral(2.0)) == pytest.approx(numeric, rel=1e-5)

    def test_inverse_value_roundtrip(self):
        lat = BPRLatency(free_flow_time=1.0, capacity=2.0)
        assert lat.inverse_value(float(lat.value(1.7))) == pytest.approx(1.7, abs=1e-9)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ModelError):
            BPRLatency(free_flow_time=0.0, capacity=1.0)
        with pytest.raises(ModelError):
            BPRLatency(free_flow_time=1.0, capacity=0.0)
        with pytest.raises(ModelError):
            BPRLatency(free_flow_time=1.0, capacity=1.0, beta=0.5)

    def test_alpha_zero_is_constant(self):
        assert BPRLatency(1.0, 1.0, alpha=0.0).is_constant
