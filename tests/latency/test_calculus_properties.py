"""Property-based consistency checks shared by all latency families.

Every latency must satisfy, on its domain:

* the integral is the antiderivative of the value (finite-difference check),
* the marginal cost equals ``l(x) + x l'(x)``,
* strictly increasing families have strictly increasing values and correct
  inverses.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.latency import (
    BPRLatency,
    LinearLatency,
    MM1Latency,
    MonomialLatency,
    PolynomialLatency,
)


def latency_strategy():
    """Hypothesis strategy generating strictly increasing latencies."""
    linear = st.builds(LinearLatency,
                       st.floats(min_value=0.05, max_value=5.0),
                       st.floats(min_value=0.0, max_value=3.0))
    monomial = st.builds(MonomialLatency,
                         st.floats(min_value=0.1, max_value=3.0),
                         st.floats(min_value=1.0, max_value=4.0),
                         st.floats(min_value=0.0, max_value=2.0))
    polynomial = st.builds(
        PolynomialLatency,
        st.lists(st.floats(min_value=0.01, max_value=2.0), min_size=2, max_size=4))
    bpr = st.builds(BPRLatency,
                    st.floats(min_value=0.2, max_value=3.0),
                    st.floats(min_value=0.5, max_value=3.0),
                    st.floats(min_value=0.05, max_value=0.5),
                    st.floats(min_value=1.0, max_value=4.0))
    # Capacity stays safely above the largest load any property test evaluates
    # (loads go up to 4.0 plus a 2.0 segment extension).
    mm1 = st.builds(MM1Latency, st.floats(min_value=8.0, max_value=50.0))
    return st.one_of(linear, monomial, polynomial, bpr, mm1)


LOADS = st.floats(min_value=0.0, max_value=4.0)


@settings(max_examples=60, deadline=None)
@given(latency_strategy(), LOADS)
def test_integral_is_antiderivative(latency, x):
    h = 1e-6
    numeric_derivative = (float(latency.integral(x + h)) - float(latency.integral(x))) / h
    assert numeric_derivative == pytest.approx(float(latency.value(x + h / 2)),
                                               rel=1e-3, abs=1e-6)


@settings(max_examples=60, deadline=None)
@given(latency_strategy(), LOADS)
def test_marginal_cost_formula(latency, x):
    expected = float(latency.value(x)) + x * float(latency.derivative(x))
    assert float(latency.marginal_cost(x)) == pytest.approx(expected, rel=1e-9,
                                                            abs=1e-12)


@settings(max_examples=60, deadline=None)
@given(latency_strategy(), LOADS)
def test_values_nonnegative_and_increasing(latency, x):
    assert float(latency.value(x)) >= 0.0
    assert float(latency.value(x + 0.1)) >= float(latency.value(x)) - 1e-12


@settings(max_examples=60, deadline=None)
@given(latency_strategy(), LOADS)
def test_inverse_value_roundtrip(latency, x):
    y = float(latency.value(x))
    recovered = latency.inverse_value(y)
    assert float(latency.value(recovered)) == pytest.approx(y, rel=1e-6, abs=1e-8)


@settings(max_examples=60, deadline=None)
@given(latency_strategy(), LOADS)
def test_inverse_marginal_roundtrip(latency, x):
    y = float(latency.marginal_cost(x))
    recovered = latency.inverse_marginal(y)
    assert float(latency.marginal_cost(recovered)) == pytest.approx(y, rel=1e-6,
                                                                    abs=1e-8)


@settings(max_examples=60, deadline=None)
@given(latency_strategy(), LOADS, st.floats(min_value=0.0, max_value=2.0))
def test_link_cost_convexity_along_segments(latency, x, delta):
    """x*l(x) must be convex: midpoint value below the chord."""
    a, b = x, x + delta
    mid = 0.5 * (a + b)
    lhs = mid * float(latency.value(mid))
    rhs = 0.5 * (a * float(latency.value(a)) + b * float(latency.value(b)))
    assert lhs <= rhs + 1e-8


@settings(max_examples=60, deadline=None)
@given(latency_strategy(), LOADS, st.floats(min_value=0.0, max_value=2.0))
def test_beckmann_integral_monotone(latency, x, delta):
    assert float(latency.integral(x + delta)) >= float(latency.integral(x)) - 1e-12
