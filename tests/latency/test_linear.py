"""Tests for linear/affine and constant latencies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import LatencyDomainError, ModelError
from repro.latency import ConstantLatency, LinearLatency


class TestLinearLatency:
    def test_value(self):
        lat = LinearLatency(2.0, 1.0)
        assert lat.value(3.0) == pytest.approx(7.0)

    def test_call_matches_value(self):
        lat = LinearLatency(2.0, 1.0)
        assert lat(3.0) == lat.value(3.0)

    def test_derivative_is_slope(self):
        lat = LinearLatency(2.5, 0.5)
        assert lat.derivative(10.0) == pytest.approx(2.5)

    def test_integral(self):
        lat = LinearLatency(2.0, 1.0)
        # int_0^3 (2t + 1) dt = 9 + 3 = 12
        assert lat.integral(3.0) == pytest.approx(12.0)

    def test_marginal_cost(self):
        lat = LinearLatency(2.0, 1.0)
        # (x(2x+1))' = 4x + 1
        assert lat.marginal_cost(3.0) == pytest.approx(13.0)

    def test_link_cost(self):
        lat = LinearLatency(1.0, 0.0)
        assert lat.link_cost(2.0) == pytest.approx(4.0)

    def test_inverse_value(self):
        lat = LinearLatency(2.0, 1.0)
        assert lat.inverse_value(7.0) == pytest.approx(3.0)

    def test_inverse_value_below_intercept_is_zero(self):
        lat = LinearLatency(2.0, 1.0)
        assert lat.inverse_value(0.5) == 0.0

    def test_inverse_marginal(self):
        lat = LinearLatency(2.0, 1.0)
        assert lat.inverse_marginal(13.0) == pytest.approx(3.0)

    def test_vectorised_evaluation(self):
        lat = LinearLatency(2.0, 1.0)
        xs = np.array([0.0, 1.0, 2.0])
        assert np.allclose(lat.value(xs), [1.0, 3.0, 5.0])
        assert np.allclose(lat.derivative(xs), 2.0)
        assert np.allclose(lat.integral(xs), [0.0, 2.0, 6.0])

    def test_negative_slope_rejected(self):
        with pytest.raises(ModelError):
            LinearLatency(-1.0, 0.0)

    def test_negative_intercept_rejected(self):
        with pytest.raises(ModelError):
            LinearLatency(1.0, -0.5)

    def test_zero_slope_is_constant(self):
        assert LinearLatency(0.0, 1.0).is_constant
        assert not LinearLatency(1.0, 1.0).is_constant

    def test_value_at_zero(self):
        assert LinearLatency(3.0, 0.25).value_at_zero == pytest.approx(0.25)

    @given(st.floats(min_value=0.01, max_value=10.0),
           st.floats(min_value=0.0, max_value=10.0),
           st.floats(min_value=0.0, max_value=100.0))
    def test_inverse_roundtrip(self, slope, intercept, x):
        lat = LinearLatency(slope, intercept)
        assert lat.inverse_value(float(lat.value(x))) == pytest.approx(x, abs=1e-8)

    @given(st.floats(min_value=0.01, max_value=10.0),
           st.floats(min_value=0.0, max_value=10.0),
           st.floats(min_value=0.0, max_value=100.0))
    def test_marginal_dominates_value(self, slope, intercept, x):
        lat = LinearLatency(slope, intercept)
        assert lat.marginal_cost(x) >= lat.value(x) - 1e-12


class TestConstantLatency:
    def test_value_independent_of_load(self):
        lat = ConstantLatency(1.5)
        assert lat.value(0.0) == lat.value(100.0) == 1.5

    def test_derivative_zero(self):
        assert ConstantLatency(1.5).derivative(3.0) == 0.0

    def test_integral(self):
        assert ConstantLatency(1.5).integral(2.0) == pytest.approx(3.0)

    def test_marginal_cost_equals_value(self):
        lat = ConstantLatency(0.7)
        assert lat.marginal_cost(5.0) == pytest.approx(0.7)

    def test_is_constant_flag(self):
        assert ConstantLatency(1.0).is_constant
        assert not ConstantLatency(1.0).is_strictly_increasing

    def test_inverse_raises(self):
        with pytest.raises(LatencyDomainError):
            ConstantLatency(1.0).inverse_value(2.0)
        with pytest.raises(LatencyDomainError):
            ConstantLatency(1.0).inverse_marginal(2.0)

    def test_negative_constant_rejected(self):
        with pytest.raises(ModelError):
            ConstantLatency(-0.1)

    def test_vectorised(self):
        lat = ConstantLatency(2.0)
        xs = np.linspace(0, 5, 7)
        assert np.allclose(lat.value(xs), 2.0)
        assert np.allclose(lat.derivative(xs), 0.0)
