"""Tests for shifted (Stackelberg a-posteriori) and scaled latency wrappers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.exceptions import ModelError
from repro.latency import (
    ConstantLatency,
    LinearLatency,
    MM1Latency,
    ScaledLatency,
    ShiftedLatency,
)


class TestShiftedLatency:
    def test_value_is_shifted(self):
        base = LinearLatency(2.0, 1.0)
        shifted = base.shifted(0.5)
        assert shifted.value(1.0) == pytest.approx(base.value(1.5))

    def test_zero_shift_returns_same_object(self):
        base = LinearLatency(1.0, 0.0)
        assert base.shifted(0.0) is base

    def test_negative_shift_rejected(self):
        with pytest.raises(ModelError):
            ShiftedLatency(LinearLatency(1.0, 0.0), -0.1)

    def test_derivative_is_shifted(self):
        base = MM1Latency(3.0)
        shifted = base.shifted(1.0)
        assert shifted.derivative(0.5) == pytest.approx(base.derivative(1.5))

    def test_integral_difference_form(self):
        base = LinearLatency(2.0, 1.0)
        shifted = base.shifted(0.5)
        expected = base.integral(1.5) - base.integral(0.5)
        assert shifted.integral(1.0) == pytest.approx(expected)

    def test_integral_at_zero_is_zero(self):
        shifted = LinearLatency(2.0, 1.0).shifted(0.7)
        assert shifted.integral(0.0) == pytest.approx(0.0)

    def test_inverse_value_accounts_for_offset(self):
        base = LinearLatency(1.0, 0.0)
        shifted = base.shifted(2.0)
        # shifted(x) = x + 2, so inverse of 5 is 3.
        assert shifted.inverse_value(5.0) == pytest.approx(3.0)

    def test_inverse_value_clamps_at_zero(self):
        shifted = LinearLatency(1.0, 0.0).shifted(2.0)
        assert shifted.inverse_value(1.0) == 0.0

    def test_domain_upper_shrinks(self):
        shifted = MM1Latency(3.0).shifted(1.0)
        assert shifted.domain_upper == pytest.approx(2.0)

    def test_nested_shift_flattens(self):
        base = LinearLatency(1.0, 0.0)
        nested = base.shifted(1.0).shifted(2.0)
        assert isinstance(nested, ShiftedLatency)
        assert nested.offset == pytest.approx(3.0)
        assert nested.base is base

    def test_constant_base_stays_constant(self):
        assert ConstantLatency(1.0).shifted(0.5).is_constant

    @given(st.floats(min_value=0.0, max_value=5.0),
           st.floats(min_value=0.0, max_value=5.0))
    def test_shift_commutes_with_evaluation(self, offset, x):
        base = LinearLatency(1.3, 0.2)
        shifted = base.shifted(offset)
        assert float(shifted.value(x)) == pytest.approx(float(base.value(x + offset)))


class TestScaledLatency:
    def test_value_is_scaled(self):
        scaled = ScaledLatency(LinearLatency(1.0, 1.0), 3.0)
        assert scaled.value(2.0) == pytest.approx(9.0)

    def test_derivative_and_integral_scale(self):
        base = LinearLatency(2.0, 0.0)
        scaled = ScaledLatency(base, 0.5)
        assert scaled.derivative(1.0) == pytest.approx(1.0)
        assert scaled.integral(2.0) == pytest.approx(0.5 * base.integral(2.0))

    def test_inverse_value(self):
        scaled = ScaledLatency(LinearLatency(1.0, 0.0), 2.0)
        assert scaled.inverse_value(4.0) == pytest.approx(2.0)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ModelError):
            ScaledLatency(LinearLatency(1.0, 0.0), 0.0)

    def test_constant_propagates(self):
        assert ScaledLatency(ConstantLatency(1.0), 2.0).is_constant
