"""LatencyBatch: family grouping and batched-calculus equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import LatencyDomainError, ModelError
from repro.latency import (
    BPRLatency,
    ConstantLatency,
    LatencyBatch,
    LatencyFunction,
    LinearLatency,
    MM1Latency,
    MonomialLatency,
    PolynomialLatency,
    ScaledLatency,
    ShiftedLatency,
)

MIXED = [
    LinearLatency(1.2, 0.3),
    ConstantLatency(1.5),
    MM1Latency(4.0),
    MonomialLatency(0.7, 3.0, 0.2),
    BPRLatency(1.0, 2.0),
    PolynomialLatency([0.1, 0.5, 0.0, 0.3]),
    ShiftedLatency(LinearLatency(0.8, 0.1), 0.4),
    ScaledLatency(MM1Latency(5.0), 2.0),
    ShiftedLatency(MonomialLatency(1.0, 2.0, 0.0), 0.25),
    ScaledLatency(ShiftedLatency(PolynomialLatency([0.2, 0.0, 0.4]), 0.3), 1.5),
]
LOADS = np.array([0.5, 1.0, 2.0, 0.8, 1.3, 0.2, 0.6, 1.1, 0.4, 0.9])


class SquareRootLatency(LatencyFunction):
    """A family the canonicaliser does not know -> generic bucket."""

    def value(self, x):
        return np.sqrt(x) + 1.0

    def derivative(self, x):
        return 0.5 / np.sqrt(np.maximum(x, 1e-300))

    def integral(self, x):
        return (2.0 / 3.0) * np.power(x, 1.5) + x


class TestGrouping:
    def test_families_are_detected(self):
        batch = LatencyBatch(MIXED)
        assert set(batch.family_names) == {"linear", "constant", "power",
                                           "mm1", "poly"}
        assert not batch.has_generic

    def test_constant_mask_matches_scalar_flags(self):
        batch = LatencyBatch(MIXED)
        expected = np.array([lat.is_constant for lat in MIXED])
        assert np.array_equal(batch.is_constant, expected)

    def test_unknown_subclass_goes_generic(self):
        batch = LatencyBatch([LinearLatency(1.0), SquareRootLatency()])
        assert batch.has_generic
        assert not batch.supports_newton

    def test_rejects_non_latency(self):
        with pytest.raises(ModelError):
            LatencyBatch([LinearLatency(1.0), object()])


class TestCalculusEquivalence:
    @pytest.mark.parametrize("method,scalar", [
        ("values", "value"),
        ("derivs", "derivative"),
        ("integrals", "integral"),
        ("marginals", "marginal_cost"),
    ])
    def test_vector_load_matches_scalar_loop(self, method, scalar):
        batch = LatencyBatch(MIXED)
        got = getattr(batch, method)(LOADS)
        want = np.array([float(getattr(lat, scalar)(x))
                         for lat, x in zip(MIXED, LOADS)])
        np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)

    def test_shared_scalar_load_matches_scalar_loop(self):
        batch = LatencyBatch(MIXED)
        got = batch.values(0.7)
        want = np.array([float(lat.value(0.7)) for lat in MIXED])
        np.testing.assert_allclose(got, want, rtol=1e-12)

    def test_values_at_zero_are_free_flow_latencies(self):
        batch = LatencyBatch(MIXED)
        want = np.array([lat.value_at_zero for lat in MIXED])
        np.testing.assert_allclose(batch.values_at_zero, want, rtol=1e-12)

    def test_generic_bucket_is_exact(self):
        lats = [SquareRootLatency(), LinearLatency(2.0, 0.1)]
        batch = LatencyBatch(lats)
        x = np.array([0.4, 0.9])
        np.testing.assert_allclose(
            batch.values(x), [float(lats[0].value(0.4)),
                              float(lats[1].value(0.9))])

    def test_mm1_domain_error_is_preserved(self):
        batch = LatencyBatch([MM1Latency(2.0), LinearLatency(1.0)])
        with pytest.raises(LatencyDomainError):
            batch.values(np.array([2.0, 0.0]))

    def test_total_cost_and_beckmann(self):
        batch = LatencyBatch(MIXED)
        want_cost = float(sum(x * float(lat.value(x))
                              for lat, x in zip(MIXED, LOADS)))
        want_beck = float(sum(float(lat.integral(x))
                              for lat, x in zip(MIXED, LOADS)))
        assert batch.total_cost(LOADS) == pytest.approx(want_cost, rel=1e-12)
        assert batch.beckmann(LOADS) == pytest.approx(want_beck, rel=1e-12)


class TestInverseEquivalence:
    @pytest.mark.parametrize("level", [0.3, 0.9, 1.7, 3.4])
    def test_inverse_values_match_scalar(self, level):
        batch = LatencyBatch(MIXED)
        got = batch.inverse_values(level)
        for i, lat in enumerate(MIXED):
            if lat.is_constant:
                assert got[i] == 0.0
            else:
                assert got[i] == pytest.approx(float(lat.inverse_value(level)),
                                               abs=1e-9)

    @pytest.mark.parametrize("level", [0.3, 0.9, 1.7, 3.4])
    def test_inverse_marginals_match_scalar(self, level):
        batch = LatencyBatch(MIXED)
        got = batch.inverse_marginals(level)
        for i, lat in enumerate(MIXED):
            if lat.is_constant:
                assert got[i] == 0.0
            else:
                assert got[i] == pytest.approx(
                    float(lat.inverse_marginal(level)), abs=1e-9)

    def test_inverse_below_free_flow_is_zero(self):
        batch = LatencyBatch(MIXED)
        floor = float(batch.values_at_zero.min())
        assert np.all(batch.inverse_values(floor - 1e-9) == 0.0)


class TestNewtonSupport:
    def test_smooth_families_support_newton(self):
        assert LatencyBatch(MIXED).supports_newton

    def test_fractional_power_between_one_and_two_is_excluded(self):
        batch = LatencyBatch([MonomialLatency(1.0, 1.5, 0.0)])
        assert not batch.supports_newton

    def test_second_derivatives_match_finite_differences(self):
        batch = LatencyBatch([lat for lat in MIXED if not lat.is_constant])
        x = np.full(batch.size, 0.8)
        h = 1e-6
        numeric = (batch.derivs(x + h) - batch.derivs(x - h)) / (2.0 * h)
        np.testing.assert_allclose(batch.second_derivs(x), numeric,
                                   rtol=1e-4, atol=1e-4)


class TestStackelbergFolding:
    def test_linear_shift_folds_into_affine_row(self):
        batch = LatencyBatch([ShiftedLatency(LinearLatency(2.0, 1.0), 0.5)])
        assert batch.family_names == ("linear",)
        assert batch.values(np.array([0.25]))[0] == pytest.approx(2.5)

    def test_mm1_shift_folds_into_capacity(self):
        shifted = ShiftedLatency(MM1Latency(4.0), 1.0)
        batch = LatencyBatch([shifted])
        assert batch.family_names == ("mm1",)
        np.testing.assert_allclose(batch.domain_upper, [3.0])
        assert batch.values(np.array([1.0]))[0] == pytest.approx(
            float(shifted.value(1.0)))

    def test_shifted_integral_subtracts_offset_part(self):
        shifted = ShiftedLatency(PolynomialLatency([0.1, 0.2, 0.4]), 0.7)
        batch = LatencyBatch([shifted])
        x = np.array([1.3])
        assert batch.integrals(x)[0] == pytest.approx(
            float(shifted.integral(1.3)), rel=1e-12)


class TestSubset:
    def test_subset_matches_rebuilt_batch(self):
        batch = LatencyBatch(MIXED)
        indices = [7, 0, 3, 2, 5]
        sub = batch.subset(indices)
        rebuilt = LatencyBatch([MIXED[i] for i in indices])
        loads = LOADS[: len(indices)]
        np.testing.assert_allclose(sub.values(loads), rebuilt.values(loads))
        np.testing.assert_allclose(sub.derivs(loads), rebuilt.derivs(loads))
        np.testing.assert_allclose(sub.integrals(loads),
                                   rebuilt.integrals(loads))
        assert sub.latencies == rebuilt.latencies

    def test_subset_preserves_generic_rows(self):
        links = [SquareRootLatency(), LinearLatency(1.0, 0.0), MM1Latency(3.0)]
        sub = LatencyBatch(links).subset([2, 0])
        loads = np.array([0.5, 0.25])
        expected = np.array([links[2].value(0.5), links[0].value(0.25)])
        np.testing.assert_allclose(sub.values(loads), expected)

    def test_subset_rejects_bad_indices(self):
        batch = LatencyBatch(MIXED)
        with pytest.raises(ModelError):
            batch.subset([])
        with pytest.raises(ModelError):
            batch.subset([0, 0])
        with pytest.raises(ModelError):
            batch.subset([len(MIXED)])

    def test_subset_level_profile_solves(self):
        from repro.equilibrium.parallel import water_fill

        batch = LatencyBatch(MIXED)
        indices = [0, 2, 3, 5]
        sub = batch.subset(indices)
        links = [MIXED[i] for i in indices]
        for kind in ("nash", "optimum"):
            flows, level = water_fill(links, 2.0, kind, batch=sub)
            ref_flows, ref_level = water_fill(links, 2.0, kind,
                                              backend="reference")
            np.testing.assert_allclose(flows, ref_flows, atol=1e-9)
            assert level == pytest.approx(ref_level, abs=1e-9)
