"""E11 — polynomial-time claims: runtime scaling of OpTop and MOP."""

from repro.analysis.studies import run_experiment


def test_e11_runtime_scaling(report):
    record = report(run_experiment, "E11",
                    optop_sizes=(8, 16, 32, 64),
                    mop_sides=(3, 4, 5))
    assert record.experiment_id == "E11"
