"""E14 — the Price of Optimum across congestion levels.

Sweeps the total demand on the canonical parallel-link instances and checks
that beta is positive exactly where selfish routing is suboptimal.
"""

from repro.analysis.studies import run_experiment


def test_e14_beta_vs_demand(report):
    record = report(run_experiment, "E14",
                    num_points=6)
    assert record.experiment_id == "E14"
