"""E6 — Theorem 2.4: optimal strategies below beta on common-slope linear links.

Compares the Theorem 2.4 polynomial-time strategy against exhaustive grid
search at alpha in {0.25, 0.5, 0.75} x beta and checks it recovers C(O) at
alpha = beta.
"""

from repro.analysis.studies import run_experiment


def test_e06_linear_optimal_strategy(report):
    record = report(run_experiment, "E6",
                    num_links=4, brute_resolution=16)
    assert record.experiment_id == "E6"
