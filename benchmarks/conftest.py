"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one paper artifact (figure, worked example
or theorem claim) through the declarative study pipeline
(:func:`repro.analysis.studies.run_experiment`), times it with
``pytest-benchmark`` and prints the regenerated table so that the harness
output documents the reproduced numbers alongside the timings.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

#: Directory where every benchmark drops the table it regenerated (pytest
#: captures stdout, so the tables would otherwise be invisible in the harness
#: log of a passing run).
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def run_and_report(benchmark, experiment, *args, **kwargs):
    """Benchmark an experiment function, print its table and assert its claims."""
    record = benchmark(lambda: experiment(*args, **kwargs))
    print()
    print(record.to_table())
    RESULTS_DIR.mkdir(exist_ok=True)
    # run_experiment takes the experiment id as its first argument; it is
    # already the filename stem, so it does not repeat in the suffix.
    extra = [v for v in args if v != record.experiment_id]
    suffix = "_".join(str(v) for v in extra + list(kwargs.values()))
    name = record.experiment_id + (f"_{suffix}" if suffix else "")
    safe_name = "".join(ch if ch.isalnum() or ch in "._-" else "_" for ch in name)
    (RESULTS_DIR / f"{safe_name}.txt").write_text(record.to_table() + "\n",
                                                  encoding="utf-8")
    assert record.all_claims_hold, (
        f"experiment {record.experiment_id} has failing paper claims:\n"
        + "\n".join(f"- {claim} (measured: {measured})"
                    for claim, measured, holds in record.claims if not holds))
    return record


@pytest.fixture
def report(benchmark):
    """Fixture exposing :func:`run_and_report` bound to the benchmark fixture."""

    def _runner(experiment, *args, **kwargs):
        return run_and_report(benchmark, experiment, *args, **kwargs)

    return _runner
