"""A2 — Ablation: MOP's max-flow free-flow rule vs a greedy decomposition rule.

Validates the DESIGN.md choice of computing the uncontrolled (free) flow as a
max-flow inside the shortest-path subgraph: it never demands more control than
the naive greedy-decomposition alternative and still induces the optimum.
"""

from repro.analysis.studies import run_experiment


def test_a02_free_flow_rule(report):
    record = report(run_experiment, "A2", seeds=(0, 1))
    assert record.experiment_id == "A2"
