"""E8 — Remark after Corollary 2.2: beta on M/M/1 server farms.

Shows that the Price of Optimum shrinks when the farm contains a small group
of highly appealing (fast) links, and vanishes for identical links.
"""

from repro.analysis.studies import run_experiment


def test_e08_mm1_beta(report):
    record = report(run_experiment, "E8")
    assert record.experiment_id == "E8"
