"""E9 — Proposition 7.1: Nash link flows are monotone in the demand."""

from repro.analysis.studies import run_experiment


def test_e09_monotonicity(report):
    record = report(run_experiment, "E9")
    assert record.experiment_id == "E9"
