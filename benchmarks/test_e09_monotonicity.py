"""E9 — Proposition 7.1: Nash link flows are monotone in the demand."""

from repro.analysis.experiments import experiment_monotonicity


def test_e09_monotonicity(report):
    record = report(experiment_monotonicity)
    assert record.experiment_id == "E9"
