"""E13 — Section 4: weak vs strong Stackelberg strategies on k commodities.

Compares the uniform-fraction (weak) Price of Optimum with the per-commodity
(strong) one computed by MOP and measures the coordination gain of strong
strategies on asymmetric multicommodity instances.
"""

from repro.analysis.studies import run_experiment


def test_e13_weak_vs_strong(report):
    record = report(run_experiment, "E13",
                    seeds=(0, 1, 2))
    assert record.experiment_id == "E13"
