"""E4 — Corollary 2.2: OpTop on random parallel-link families.

Per instance family (linear, common-slope, polynomial, mixed) the benchmark
reports beta statistics and verifies that OpTop's strategy always induces the
optimum cost and that no grid strategy below beta can do so.
"""

from repro.analysis.studies import run_experiment


def test_e04_optop_random_families(report):
    record = report(run_experiment, "E4",
                    num_instances=4, num_links=6)
    assert record.experiment_id == "E4"
