"""E12 — footnote 6 / Sharma–Williamson: minimum useful control vs beta."""

from repro.analysis.experiments import experiment_thresholds


def test_e12_useful_control_thresholds(report):
    record = report(experiment_thresholds)
    assert record.experiment_id == "E12"
