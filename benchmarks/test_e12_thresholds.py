"""E12 — footnote 6 / Sharma–Williamson: minimum useful control vs beta."""

from repro.analysis.studies import run_experiment


def test_e12_useful_control_thresholds(report):
    record = report(run_experiment, "E12")
    assert record.experiment_id == "E12"
