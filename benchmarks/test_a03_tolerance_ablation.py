"""A3 — Ablation: sensitivity of beta to the shortest-path classification slack."""

from repro.analysis.studies import run_experiment


def test_a03_shortest_path_tolerance(report):
    record = report(run_experiment, "A3")
    assert record.experiment_id == "A3"
