"""A3 — Ablation: sensitivity of beta to the shortest-path classification slack."""

from repro.analysis.ablation import ablation_shortest_path_tolerance


def test_a03_shortest_path_tolerance(report):
    record = report(ablation_shortest_path_tolerance)
    assert record.experiment_id == "A3"
