"""E15 — elastic demand: rate, price, beta and surplus across demand curves.

Sweeps linear inverse-demand curves on the canonical parallel-link
instances and checks that the realised rate and the consumer surplus grow
monotonically with the curve's intercept.
"""

from repro.analysis.studies import run_experiment


def test_e15_elastic_demand(report):
    record = report(run_experiment, "E15")
    assert record.experiment_id == "E15"
