"""E3 — Figure 7: MOP on the Roughgarden Example 6.5.1 graph.

Regenerates the optimal edge flows (3/4-e, 1/4+e, 1/2-2e, ...), the shortest
path P0, the Price of Optimum beta_G = 1/2 + 2e and the fact that MOP's
strategy induces the optimum cost despite the 1/alpha lower-bound example.
"""

import pytest

from repro.analysis.studies import run_experiment


def test_e03_roughgarden_unperturbed(report):
    record = report(run_experiment, "E3", epsilon=0.0)
    assert record.experiment_id == "E3"


@pytest.mark.parametrize("epsilon", [0.02, 0.08])
def test_e03_roughgarden_perturbed(report, epsilon):
    report(run_experiment, "E3", epsilon=epsilon)
