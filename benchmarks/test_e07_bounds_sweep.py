"""E7 — Expression (2): a-posteriori anarchy cost vs alpha.

Sweeps the Leader's share and verifies the LLF guarantees 1/alpha (arbitrary
latencies) and 4/(3+alpha) (linear latencies), and that for alpha >= beta the
ratio is exactly 1 via OpTop's strategy.
"""

from repro.analysis.studies import run_experiment


def test_e07_bound_sweep(report):
    record = report(run_experiment, "E7")
    assert record.experiment_id == "E7"
