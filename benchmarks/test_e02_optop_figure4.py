"""E2 — Figures 4–6: the five-link OpTop walk-through.

Regenerates the Nash and optimum flows of the l1=x .. l5=0.7 instance, checks
that OpTop freezes exactly M4 and M5, that beta = 29/120 and that the induced
equilibrium matches the optimum (Figure 6).
"""

from repro.analysis.studies import run_experiment


def test_e02_figure4_walkthrough(report):
    record = report(run_experiment, "E2")
    assert record.experiment_id == "E2"
