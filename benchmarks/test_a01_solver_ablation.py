"""A1 — Ablation: exact path-based solver vs Frank–Wolfe.

The paper only requires that optima and equilibria be "efficiently
computable"; this ablation shows that the two solvers we implement agree, so
the choice does not affect any reproduced number.
"""

from repro.analysis.studies import run_experiment


def test_a01_solver_agreement(report):
    record = report(run_experiment, "A1", seeds=(0, 1))
    assert record.experiment_id == "A1"
