"""A1 — Ablation: exact path-based solver vs Frank–Wolfe.

The paper only requires that optima and equilibria be "efficiently
computable"; this ablation shows that the two solvers we implement agree, so
the choice does not affect any reproduced number.
"""

from repro.analysis.ablation import ablation_solver_agreement


def test_a01_solver_agreement(report):
    record = report(ablation_solver_agreement, seeds=(0, 1))
    assert record.experiment_id == "A1"
