"""E5 — Corollary 2.3 / Theorem 2.1: MOP on s–t and k-commodity networks.

Reports beta, optimum cost and induced cost on grid, layered and
2-commodity instances, plus the classic Braess graph where beta = 1.
"""

from repro.analysis.studies import run_experiment


def test_e05_mop_networks(report):
    record = report(run_experiment, "E5",
                    seeds=(0, 1))
    assert record.experiment_id == "E5"
