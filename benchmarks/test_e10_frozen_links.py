"""E10 — Theorems 7.2/7.4 and Lemma 7.5: useless strategies and frozen links.

Random sub-Nash strategies must recreate the Nash equilibrium exactly, and
links frozen above their Nash load must receive zero induced selfish flow.
"""

from repro.analysis.studies import run_experiment


def test_e10_frozen_links(report):
    record = report(run_experiment, "E10")
    assert record.experiment_id == "E10"
