"""E10 — Theorems 7.2/7.4 and Lemma 7.5: useless strategies and frozen links.

Random sub-Nash strategies must recreate the Nash equilibrium exactly, and
links frozen above their Nash load must receive zero induced selfish flow.
"""

from repro.analysis.experiments import experiment_frozen_links


def test_e10_frozen_links(report):
    record = report(experiment_frozen_links)
    assert record.experiment_id == "E10"
