"""E1 — Figures 1–3: Pigou's example.

Regenerates the Nash/optimum flows, the 4/3 anarchy cost and the Price of
Optimum beta = 1/2 with the Leader strategy <0, 1/2> of Figures 2–3.
"""

from repro.analysis.studies import run_experiment


def test_e01_pigou_example(report):
    record = report(run_experiment, "E1")
    assert record.experiment_id == "E1"
