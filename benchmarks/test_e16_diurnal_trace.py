"""E16 — a diurnal demand trace solved step by step.

Replays a quantised sinusoidal day on the Figure 4 instance through the
study pipeline and checks that OpTop restores the optimum at every step
and that the trace's revisited levels share artifacts.
"""

from repro.analysis.studies import run_experiment


def test_e16_diurnal_trace(report):
    record = report(run_experiment, "E16",
                    num_steps=12)
    assert record.experiment_id == "E16"
